// Thread-count determinism: every parallel kernel partitions work by
// output element without changing any per-element accumulation order,
// so the whole stack -- linalg kernels, SVT, LRR, LoLi-IR, the KNN
// matcher -- must produce the same numbers at 1 thread and at 8.
#include <gtest/gtest.h>

#include <cmath>

#include "tafloc/exec/exec_config.h"
#include "tafloc/exec/thread_pool.h"
#include "tafloc/fingerprint/distortion.h"
#include "tafloc/fingerprint/reference.h"
#include "tafloc/linalg/matrix.h"
#include "tafloc/loc/matcher.h"
#include "tafloc/recon/loli_ir.h"
#include "tafloc/recon/lrr.h"
#include "tafloc/recon/svt.h"
#include "tafloc/sim/scenario.h"
#include "tafloc/telemetry/metrics.h"
#include "tafloc/util/rng.h"

namespace tafloc {
namespace {

/// RAII guard: set the global pool size, restore the old one on exit.
class ThreadGuard {
 public:
  explicit ThreadGuard(std::size_t threads) : previous_(global_thread_count()) {
    set_global_threads(threads);
  }
  ~ThreadGuard() { set_global_threads(previous_); }

 private:
  std::size_t previous_;
};

Matrix random_matrix(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, cols);
  for (double& v : m.data()) v = rng.normal(0.0, 1.0);
  return m;
}

template <class Fn>
auto at_threads(std::size_t threads, Fn&& fn) {
  ThreadGuard guard(threads);
  return fn();
}

// ---------------- linalg kernels ----------------

TEST(ExecDeterminism, IntoKernelsMatchValueApiBitwise) {
  const Matrix a = random_matrix(37, 53, 11);
  const Matrix b = random_matrix(53, 29, 12);
  const Matrix c = random_matrix(29, 53, 13);

  ThreadGuard guard(8);
  Matrix prod(a.rows(), b.cols());
  multiply_into(a, b, prod);
  EXPECT_EQ(max_abs_diff(prod, a * b), 0.0);

  Matrix gram(a.cols(), a.cols());
  gram_product_into(a, a, gram);
  EXPECT_EQ(max_abs_diff(gram, gram_product(a, a)), 0.0);

  Matrix tr(a.cols(), a.rows());
  transposed_into(a, tr);
  EXPECT_EQ(max_abs_diff(tr, a.transposed()), 0.0);

  Matrix outer(a.rows(), c.rows());
  outer_product_into(a, c, outer);
  EXPECT_EQ(max_abs_diff(outer, outer_product(a, c)), 0.0);
}

TEST(ExecDeterminism, GemmBitIdenticalAcrossThreadCounts) {
  const Matrix a = random_matrix(96, 64, 21);
  const Matrix b = random_matrix(64, 80, 22);
  const Matrix p1 = at_threads(1, [&] { return a * b; });
  const Matrix p8 = at_threads(8, [&] { return a * b; });
  EXPECT_EQ(max_abs_diff(p1, p8), 0.0);
}

TEST(ExecDeterminism, ViewKernelsBitIdenticalToCopyPathsAcrossThreads) {
  // Property: running a kernel on a col_view/block_view/columns_view of
  // a larger matrix gives bitwise the same result as first copying the
  // slice out -- at 1 thread and at 8.
  const Matrix big = random_matrix(48, 72, 61);
  const Matrix b = random_matrix(24, 33, 62);

  const Matrix slice_copy(big.block_view(8, 16, 40, 24));  // owning copy
  for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    ThreadGuard guard(threads);
    // gemm on the strided block view vs on the copy.
    Matrix from_view(40, 33);
    multiply_into(big.block_view(8, 16, 40, 24), b.view(), from_view.view());
    Matrix from_copy;
    multiply_into(slice_copy, b, from_copy);
    EXPECT_EQ(from_view, from_copy) << "threads=" << threads;

    // gram product on a contiguous column-range view vs on the copy.
    const Matrix cols_copy(big.columns_view(10, 20));
    Matrix gram_view(20, 20);
    gram_product_into(big.columns_view(10, 20), big.columns_view(10, 20), gram_view.view());
    Matrix gram_copy;
    gram_product_into(cols_copy, cols_copy, gram_copy);
    EXPECT_EQ(gram_view, gram_copy) << "threads=" << threads;

    // transpose of a strided block.
    Matrix tr_view(24, 40);
    transposed_into(big.block_view(8, 16, 40, 24), tr_view.view());
    Matrix tr_copy;
    transposed_into(slice_copy, tr_copy);
    EXPECT_EQ(tr_view, tr_copy) << "threads=" << threads;
  }
}

TEST(ExecDeterminism, GatherColumnsMatchesSelectColumnsAcrossThreads) {
  const Matrix x = random_matrix(32, 50, 63);
  const std::vector<std::size_t> idx = {0, 7, 7, 49, 13};
  for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    ThreadGuard guard(threads);
    Matrix gathered;
    gather_columns_into(x, idx, gathered);
    EXPECT_EQ(gathered, x.select_columns(idx)) << "threads=" << threads;
  }
}

// ---------------- reconstruction solvers ----------------

TEST(ExecDeterminism, SvtAgreesAcrossThreadCounts) {
  // Low-rank ground truth with a random observation mask.
  const Matrix u = random_matrix(24, 3, 31);
  const Matrix v = random_matrix(20, 3, 32);
  const Matrix truth = outer_product(u, v);
  Rng rng(33);
  Matrix mask(truth.rows(), truth.cols());
  for (double& x : mask.data()) x = rng.uniform01() < 0.6 ? 1.0 : 0.0;
  const Matrix known = mask.hadamard(truth);

  const SvtResult r1 = at_threads(1, [&] { return svt_complete(known, mask); });
  const SvtResult r8 = at_threads(8, [&] { return svt_complete(known, mask); });
  EXPECT_EQ(r1.iterations, r8.iterations);
  EXPECT_LE(max_abs_diff(r1.x, r8.x), 1e-12);
}

TEST(ExecDeterminism, LrrNuclearNormAgreesAcrossThreadCounts) {
  const Matrix x0 = random_matrix(16, 40, 41);
  const std::vector<std::size_t> refs = {0, 5, 11, 17, 23, 31};
  LrrOptions opt;
  opt.solver = LrrSolver::NuclearNorm;
  opt.max_iterations = 60;

  const Matrix z1 =
      at_threads(1, [&] { return LrrModel(x0, refs, opt).correlation(); });
  const Matrix z8 =
      at_threads(8, [&] { return LrrModel(x0, refs, opt).correlation(); });
  EXPECT_LE(max_abs_diff(z1, z8), 1e-12);
}

/// A ready-to-solve LoLi-IR instance from the simulated paper room
/// (assembled the same way TafLocSystem does it).
LoliIrProblem paper_room_problem(std::uint64_t seed, double t_days) {
  Scenario scenario = Scenario::paper_room(seed);
  Rng rng0(seed + 500);
  const Matrix x0 = scenario.collector().survey_all(0.0, rng0);
  Rng rng1(seed + 501);
  const Vector ambient0 = scenario.collector().ambient_scan(0.0, rng1);
  const DistortionMask mask = DistortionDetector().detect_from_data(x0, ambient0);
  const std::vector<std::size_t> refs =
      select_reference_locations(x0, 10, ReferencePolicy::QrPivot);
  const LrrModel lrr(x0, refs);

  Rng rng(seed + 1000);
  const Matrix fresh_refs = scenario.collector().survey_grids(refs, t_days, rng);
  const Vector fresh_ambient = scenario.collector().ambient_scan(t_days, rng);

  LoliIrProblem problem;
  problem.mask_undistorted = mask.undistorted;
  problem.known = known_entry_matrix(mask, fresh_ambient);
  problem.prediction = lrr.predict(fresh_refs);
  problem.reference_columns = fresh_refs;
  problem.reference_indices = refs;
  problem.continuity = continuity_pairs(scenario.deployment(), &mask);
  problem.similarity = similarity_pairs(scenario.deployment(), &mask);
  return problem;
}

TEST(ExecDeterminism, LoliIrAgreesAcrossThreadCounts) {
  const LoliIrProblem problem = paper_room_problem(7, 45.0);

  const LoliIrResult r1 = at_threads(1, [&] { return loli_ir_reconstruct(problem); });
  const LoliIrResult r8 = at_threads(8, [&] { return loli_ir_reconstruct(problem); });

  EXPECT_EQ(r1.outer_iterations, r8.outer_iterations);
  EXPECT_EQ(r1.converged, r8.converged);
  EXPECT_LE(max_abs_diff(r1.x, r8.x), 1e-12);
  ASSERT_EQ(r1.objective_trace.size(), r8.objective_trace.size());
  for (std::size_t i = 0; i < r1.objective_trace.size(); ++i)
    EXPECT_NEAR(r1.objective_trace[i], r8.objective_trace[i],
                1e-12 * std::abs(r1.objective_trace[i]));
}

TEST(ExecDeterminism, LoliIrSteadyStateIsAllocationFree) {
  const LoliIrProblem problem = paper_room_problem(8, 45.0);
  const LoliIrResult res = loli_ir_reconstruct(problem);
  ASSERT_GE(res.outer_iterations, 2u)
      << "fixture must iterate at least twice to exercise the steady state";
  EXPECT_GT(res.workspace_allocations, 0u);
  EXPECT_EQ(res.workspace_allocations_steady, 0u)
      << "iterations after warm-up must reuse every workspace buffer";
}

TEST(ExecDeterminism, LrrIstaSteadyStateIsAllocationFree) {
  const Matrix x0 = random_matrix(16, 40, 42);
  const std::vector<std::size_t> refs = {0, 5, 11, 17, 23, 31};
  LrrOptions opt;
  opt.solver = LrrSolver::NuclearNorm;
  opt.max_iterations = 60;
  const LrrModel model(x0, refs, opt);
  ASSERT_GE(model.solver_iterations(), 2u)
      << "fixture must iterate at least twice to exercise the steady state";
  EXPECT_GT(model.workspace_allocations(), 0u);
  EXPECT_EQ(model.workspace_allocations_steady(), 0u)
      << "ISTA iterations after warm-up must reuse every workspace buffer";
}

// ---------------- telemetry neutrality ----------------

TEST(ExecDeterminism, LoliIrBitIdenticalWithTelemetryOnOffAcrossThreadCounts) {
  // The determinism contract of the telemetry layer: metrics observe,
  // never steer, so an attached registry changes no output bit at any
  // thread count.
  const LoliIrProblem problem = paper_room_problem(11, 45.0);
  for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    ThreadGuard guard(threads);
    MetricRegistry registry;
    LoliIrConfig with_telemetry;
    with_telemetry.telemetry = &registry;
    const LoliIrResult on = loli_ir_reconstruct(problem, with_telemetry);
    const LoliIrResult off = loli_ir_reconstruct(problem, LoliIrConfig{});

    EXPECT_EQ(max_abs_diff(on.x, off.x), 0.0) << "threads=" << threads;
    EXPECT_EQ(on.outer_iterations, off.outer_iterations) << "threads=" << threads;
    EXPECT_EQ(on.converged, off.converged) << "threads=" << threads;
    ASSERT_EQ(on.objective_trace.size(), off.objective_trace.size());
    for (std::size_t i = 0; i < on.objective_trace.size(); ++i)
      EXPECT_EQ(on.objective_trace[i], off.objective_trace[i])
          << "threads=" << threads << " sweep " << i;
    EXPECT_GT(registry.counter("recon.loli_ir.outer_iterations").value(), 0u)
        << "the instrumented run must actually have recorded metrics";
  }
}

TEST(ExecDeterminism, KnnBitIdenticalWithTelemetryAttachedAcrossThreadCounts) {
  Scenario scenario = Scenario::paper_room(12);
  Rng rng(1201);
  const Matrix fingerprints = scenario.collector().survey_all(0.0, rng);
  KnnMatcher plain(fingerprints, scenario.deployment().grid(), 3);
  KnnMatcher instrumented(fingerprints, scenario.deployment().grid(), 3);
  MetricRegistry registry;
  instrumented.attach_telemetry(&registry);

  std::vector<Vector> batch;
  for (std::size_t q = 0; q < 24; ++q) {
    Vector rss(fingerprints.rows());
    for (double& v : rss) v = rng.normal(-50.0, 5.0);
    batch.push_back(std::move(rss));
  }

  for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    ThreadGuard guard(threads);
    const std::vector<Point2> expected = plain.localize_batch(batch);
    const std::vector<Point2> observed = instrumented.localize_batch(batch);
    ASSERT_EQ(expected.size(), observed.size());
    for (std::size_t q = 0; q < expected.size(); ++q) {
      EXPECT_EQ(expected[q].x, observed[q].x) << "threads=" << threads << " query " << q;
      EXPECT_EQ(expected[q].y, observed[q].y) << "threads=" << threads << " query " << q;
    }
  }
  EXPECT_EQ(registry.counter("loc.knn.batch_queries").value(), 2u * 24u);
  EXPECT_EQ(registry.histogram("loc.knn.query_seconds").count(), 2u * 24u);
}

// ---------------- localization ----------------

TEST(ExecDeterminism, KnnPerQueryPathIsAllocationFree) {
  // The Fig. 5 per-query loop: after one warm-up query per thread, the
  // KNN scratch counter must stay flat no matter how many queries run.
  Scenario scenario = Scenario::paper_room(10);
  Rng rng(1001);
  const Matrix fingerprints = scenario.collector().survey_all(0.0, rng);
  const KnnMatcher matcher(fingerprints, scenario.deployment().grid(), 3);

  Vector rss(fingerprints.rows());
  for (double& v : rss) v = rng.normal(-50.0, 5.0);

  ThreadGuard guard(1);  // single lane -> one thread_local scratch
  (void)matcher.localize(rss);  // warm up the scratch
  const std::size_t before = KnnMatcher::scratch_allocations();
  for (std::size_t q = 0; q < 200; ++q) {
    for (double& v : rss) v = rng.normal(-50.0, 5.0);
    (void)matcher.localize(rss);
  }
  EXPECT_EQ(KnnMatcher::scratch_allocations(), before)
      << "localize() must not grow its scratch after the first query";
}

TEST(ExecDeterminism, LocalizeBatchMatchesSequentialCalls) {
  Scenario scenario = Scenario::paper_room(9);
  Rng rng(901);
  const Matrix fingerprints = scenario.collector().survey_all(0.0, rng);
  const KnnMatcher matcher(fingerprints, scenario.deployment().grid(), 3);

  std::vector<Vector> batch;
  for (std::size_t q = 0; q < 32; ++q) {
    Vector rss(fingerprints.rows());
    for (double& v : rss) v = rng.normal(-50.0, 5.0);
    batch.push_back(std::move(rss));
  }

  ThreadGuard guard(8);
  const std::vector<Point2> parallel = matcher.localize_batch(batch);
  ASSERT_EQ(parallel.size(), batch.size());
  for (std::size_t q = 0; q < batch.size(); ++q) {
    const Point2 sequential = matcher.localize(batch[q]);
    EXPECT_EQ(parallel[q].x, sequential.x) << "query " << q;
    EXPECT_EQ(parallel[q].y, sequential.y) << "query " << q;
  }
}

TEST(ExecDeterminism, KnnAllHealthyMaskBitIdenticalAcrossThreadCounts) {
  // Attaching a LinkHealth mask with every link usable must leave the
  // scan on its exact unmasked code path: same bits as no mask, at any
  // thread count.
  Scenario scenario = Scenario::paper_room(13);
  Rng rng(1301);
  const Matrix fingerprints = scenario.collector().survey_all(0.0, rng);
  const LinkHealth health(fingerprints.rows());
  KnnMatcher plain(fingerprints, scenario.deployment().grid(), 3);
  KnnMatcher masked(fingerprints, scenario.deployment().grid(), 3);
  masked.attach_link_health(&health);

  std::vector<Vector> batch;
  for (std::size_t q = 0; q < 24; ++q) {
    Vector rss(fingerprints.rows());
    for (double& v : rss) v = rng.normal(-50.0, 5.0);
    batch.push_back(std::move(rss));
  }

  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    ThreadGuard guard(threads);
    const std::vector<Point2> expected = plain.localize_batch(batch);
    const std::vector<Point2> observed = masked.localize_batch(batch);
    ASSERT_EQ(expected.size(), observed.size());
    for (std::size_t q = 0; q < expected.size(); ++q) {
      EXPECT_EQ(expected[q].x, observed[q].x) << "threads=" << threads << " query " << q;
      EXPECT_EQ(expected[q].y, observed[q].y) << "threads=" << threads << " query " << q;
    }
  }
}

TEST(ExecDeterminism, KnnMaskedScanBitIdenticalAcrossThreadCounts) {
  Scenario scenario = Scenario::paper_room(14);
  Rng rng(1401);
  const Matrix fingerprints = scenario.collector().survey_all(0.0, rng);
  LinkHealth health(fingerprints.rows());
  health.mark_dead(0);
  health.mark_dead(fingerprints.rows() / 2);
  KnnMatcher matcher(fingerprints, scenario.deployment().grid(), 3);
  matcher.attach_link_health(&health);

  std::vector<Vector> batch;
  for (std::size_t q = 0; q < 16; ++q) {
    Vector rss(fingerprints.rows());
    for (double& v : rss) v = rng.normal(-50.0, 5.0);
    batch.push_back(std::move(rss));
  }

  const std::vector<Point2> reference =
      at_threads(1, [&] { return matcher.localize_batch(batch); });
  for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    const std::vector<Point2> observed =
        at_threads(threads, [&] { return matcher.localize_batch(batch); });
    ASSERT_EQ(reference.size(), observed.size());
    for (std::size_t q = 0; q < reference.size(); ++q) {
      EXPECT_EQ(reference[q].x, observed[q].x) << "threads=" << threads << " query " << q;
      EXPECT_EQ(reference[q].y, observed[q].y) << "threads=" << threads << " query " << q;
    }
  }
}

TEST(ExecDeterminism, KnnTieBreakDeterministicWithDuplicateColumns) {
  // Duplicate fingerprint columns give exactly equal distances; the
  // index tie-break must pick the same (lowest-index) neighbours at
  // every thread count instead of whatever partial_sort happens to do.
  const GridMap grid(2.4, 0.6, 0.6);  // 4 cells in a row
  Matrix fp(2, 4);
  // Columns 1 and 2 are exact duplicates; column 0 is the best match.
  const double cols[4][2] = {{-40.0, -40.0}, {-55.0, -55.0}, {-55.0, -55.0}, {-70.0, -70.0}};
  for (std::size_t j = 0; j < 4; ++j)
    for (std::size_t i = 0; i < 2; ++i) fp(i, j) = cols[j][i];
  const KnnMatcher matcher(fp, grid, 2, /*weighted=*/true, /*spatial_gate_m=*/0.0);
  const std::vector<double> y{-41.0, -41.0};

  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    ThreadGuard guard(threads);
    const std::vector<std::size_t> nearest = matcher.nearest_grids(y);
    ASSERT_EQ(nearest.size(), 2u);
    EXPECT_EQ(nearest[0], 0u) << "threads=" << threads;
    EXPECT_EQ(nearest[1], 1u) << "threads=" << threads;  // 1 beats its duplicate 2
  }
}

}  // namespace
}  // namespace tafloc
