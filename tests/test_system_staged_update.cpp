// Staged (off-thread) fingerprint updates: stage -> solve -> commit
// equivalence with the synchronous path, staging contract enforcement,
// and the save()-vs-swap serialization a drain mid-recalibration
// depends on.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <string>
#include <thread>
#include <utility>

#include "tafloc/tafloc.h"

namespace tafloc {
namespace {

namespace fs = std::filesystem;

class TempZone {
 public:
  explicit TempZone(const std::string& tag)
      : path_(fs::temp_directory_path() /
              ("tafloc_staged_" + tag + "_" + std::to_string(::getpid()))) {
    fs::remove_all(path_);
  }
  ~TempZone() { fs::remove_all(path_); }
  std::string str() const { return path_.string(); }

 private:
  fs::path path_;
};

class StagedUpdateTest : public ::testing::Test {
 protected:
  StagedUpdateTest() : scenario_(Scenario::paper_room(777)) {}

  TafLocSystem calibrated_system(Rng& rng) const {
    TafLocSystem sys(scenario_.deployment());
    sys.calibrate(scenario_.collector().survey_all(0.0, rng),
                  scenario_.collector().ambient_scan(0.0, rng), 0.0);
    return sys;
  }

  struct Survey {
    Matrix ref_cols;
    Vector ambient;
  };
  Survey reference_survey(const TafLocSystem& sys, double t, Rng& rng) const {
    return {scenario_.collector().survey_grids(sys.reference_locations(), t, rng),
            scenario_.collector().ambient_scan(t, rng)};
  }

  Scenario scenario_;
};

TEST_F(StagedUpdateTest, StagedPhasesMatchSynchronousUpdateBitExactly) {
  Rng rng_a(5);
  Rng rng_b(5);
  TafLocSystem sync_sys = calibrated_system(rng_a);
  TafLocSystem staged_sys = calibrated_system(rng_b);

  const Survey survey_a = reference_survey(sync_sys, 7.0, rng_a);
  const Survey survey_b = reference_survey(staged_sys, 7.0, rng_b);

  const auto sync_report = sync_sys.update(survey_a.ref_cols, survey_a.ambient, 7.0);

  TafLocSystem::StagedUpdate staged =
      staged_sys.stage_update(survey_b.ref_cols, survey_b.ambient, 7.0);
  EXPECT_TRUE(staged_sys.update_staged());
  // Serving keeps answering from the OLD matrix between stage and commit.
  Rng probe(31);
  const Vector rss = scenario_.collector().observe({2.5, 1.5}, 7.0, probe);
  const Point2 before = staged_sys.localize(rss);
  staged_sys.solve_staged_update(staged);
  const Point2 still_before = staged_sys.localize(rss);
  EXPECT_EQ(before.x, still_before.x);
  EXPECT_EQ(before.y, still_before.y);

  const auto staged_report = staged_sys.commit_update(std::move(staged));
  EXPECT_FALSE(staged_sys.update_staged());

  EXPECT_EQ(sync_report.solver.outer_iterations, staged_report.solver.outer_iterations);
  EXPECT_EQ(sync_report.solver.objective, staged_report.solver.objective);
  EXPECT_TRUE(sync_sys.database() == staged_sys.database());
  const Point2 a = sync_sys.localize(rss);
  const Point2 b = staged_sys.localize(rss);
  EXPECT_EQ(a.x, b.x);
  EXPECT_EQ(a.y, b.y);
}

TEST_F(StagedUpdateTest, OnlyOneUpdateMayBeStaged) {
  Rng rng(6);
  TafLocSystem sys = calibrated_system(rng);
  const Survey survey = reference_survey(sys, 3.0, rng);
  TafLocSystem::StagedUpdate staged = sys.stage_update(survey.ref_cols, survey.ambient, 3.0);
  EXPECT_THROW((void)sys.stage_update(survey.ref_cols, survey.ambient, 3.5), std::logic_error);
  sys.abandon_staged_update(staged);
  EXPECT_FALSE(sys.update_staged());
  // After abandoning, staging works again.
  TafLocSystem::StagedUpdate again = sys.stage_update(survey.ref_cols, survey.ambient, 4.0);
  sys.solve_staged_update(again);
  (void)sys.commit_update(std::move(again));
}

TEST_F(StagedUpdateTest, CommitRequiresSolveAndStage) {
  Rng rng(7);
  TafLocSystem sys = calibrated_system(rng);
  const Survey survey = reference_survey(sys, 3.0, rng);
  TafLocSystem::StagedUpdate unsolved = sys.stage_update(survey.ref_cols, survey.ambient, 3.0);
  EXPECT_THROW((void)sys.commit_update(std::move(unsolved)), std::logic_error);
  // The failed commit did not consume the staged slot.
  EXPECT_TRUE(sys.update_staged());
}

TEST_F(StagedUpdateTest, SaveMidStagedUpdateKeepsInFlightUpdateRecoverable) {
  TempZone zone("midflight");
  Rng rng(8);
  TafLocSystem live(scenario_.deployment());
  live.attach_durability({zone.str()});
  live.calibrate(scenario_.collector().survey_all(0.0, rng),
                 scenario_.collector().ambient_scan(0.0, rng), 0.0);
  const Survey survey = reference_survey(live, 9.0, rng);

  // Admission writes the WAL record; a save() before the commit (an
  // operator snapshot racing the recalibration) must NOT claim coverage
  // of it -- the process then dies without ever committing.
  TafLocSystem::StagedUpdate staged = live.stage_update(survey.ref_cols, survey.ambient, 9.0);
  live.save();

  // A recovered process replays the in-flight update from the log...
  TafLocSystem restored(scenario_.deployment());
  restored.attach_durability({zone.str()});
  const RecoveryReport report = restored.recover();
  EXPECT_EQ(report.outcome, RecoveryReport::Outcome::kReplayed);
  EXPECT_GE(report.replayed_records, 1u);

  // ...landing bit-identically on the matrix the live process would
  // have swapped in.
  live.solve_staged_update(staged);
  (void)live.commit_update(std::move(staged));
  EXPECT_TRUE(restored.database() == live.database());
}

TEST_F(StagedUpdateTest, ConcurrentSavesSerializeAgainstTheSwap) {
  TempZone zone("race");
  Rng rng(9);
  TafLocSystem live(scenario_.deployment());
  live.attach_durability({zone.str()});
  live.calibrate(scenario_.collector().survey_all(0.0, rng),
                 scenario_.collector().ambient_scan(0.0, rng), 0.0);

  // A drain thread hammers save() while the serving thread runs staged
  // recalibrations; without the commit lock this is a WAL-rotation
  // use-after-free and a torn snapshot.
  std::atomic<bool> stop{false};
  std::thread drainer([&] {
    while (!stop.load()) live.save();
  });
  for (int round = 0; round < 6; ++round) {
    const double t = 1.0 + round;
    const Survey survey = reference_survey(live, t, rng);
    TafLocSystem::StagedUpdate staged = live.stage_update(survey.ref_cols, survey.ambient, t);
    live.solve_staged_update(staged);
    (void)live.commit_update(std::move(staged));
  }
  stop = true;
  drainer.join();
  live.save();

  TafLocSystem restored(scenario_.deployment());
  restored.attach_durability({zone.str()});
  const RecoveryReport report = restored.recover();
  EXPECT_NE(report.outcome, RecoveryReport::Outcome::kUnrecoverable);
  ASSERT_TRUE(restored.calibrated());
  EXPECT_TRUE(restored.database() == live.database());
}

}  // namespace
}  // namespace tafloc
