#include "tafloc/linalg/io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <limits>
#include <sstream>
#include <string_view>

#include "tafloc/linalg/ops.h"
#include "tafloc/util/rng.h"

namespace tafloc {
namespace {

TEST(LinalgIo, MatrixRoundTripExact) {
  Rng rng(1);
  const Matrix m = random_gaussian(5, 7, rng);
  std::stringstream ss;
  save_matrix(m, ss);
  const Matrix back = load_matrix(ss);
  EXPECT_EQ(back.rows(), 5u);
  EXPECT_EQ(back.cols(), 7u);
  // precision 17 makes the text round trip bit-exact for doubles.
  EXPECT_EQ(back, m);
}

TEST(LinalgIo, EmptyMatrixRoundTrip) {
  std::stringstream ss;
  save_matrix(Matrix(), ss);
  const Matrix back = load_matrix(ss);
  EXPECT_TRUE(back.empty());
}

TEST(LinalgIo, VectorRoundTripExact) {
  const Vector v{1.0, -2.5, 3.25e-17, 1e300};
  std::stringstream ss;
  save_vector(v, ss);
  const Vector back = load_vector(ss);
  EXPECT_EQ(back, v);
}

TEST(LinalgIo, EmptyVectorRoundTrip) {
  std::stringstream ss;
  save_vector(Vector{}, ss);
  EXPECT_TRUE(load_vector(ss).empty());
}

TEST(LinalgIo, SequentialObjectsInOneStream) {
  Rng rng(2);
  const Matrix a = random_gaussian(2, 3, rng);
  const Vector v{9.0, 8.0};
  const Matrix b = random_gaussian(4, 1, rng);
  std::stringstream ss;
  save_matrix(a, ss);
  save_vector(v, ss);
  save_matrix(b, ss);
  EXPECT_EQ(load_matrix(ss), a);
  EXPECT_EQ(load_vector(ss), v);
  EXPECT_EQ(load_matrix(ss), b);
}

TEST(LinalgIo, LoadRejectsWrongTag) {
  std::stringstream ss("vector 2\n1 2\n");
  EXPECT_THROW(load_matrix(ss), std::runtime_error);
  std::stringstream ss2("matrix 1 1\n3\n");
  EXPECT_THROW(load_vector(ss2), std::runtime_error);
}

TEST(LinalgIo, LoadRejectsTruncatedValues) {
  std::stringstream ss("matrix 2 2\n1 2 3\n");
  EXPECT_THROW(load_matrix(ss), std::runtime_error);
}

TEST(LinalgIo, LoadRejectsBadDimensions) {
  std::stringstream ss("matrix -1 2\n");
  EXPECT_THROW(load_matrix(ss), std::runtime_error);
  std::stringstream ss2("matrix 0 2\n");
  EXPECT_THROW(load_matrix(ss2), std::runtime_error);
  std::stringstream ss3("matrix x y\n");
  EXPECT_THROW(load_matrix(ss3), std::runtime_error);
}

TEST(LinalgIo, FileRoundTrip) {
  Rng rng(3);
  const Matrix m = random_gaussian(3, 3, rng);
  const std::string path = std::string(::testing::TempDir()) + "tafloc_io_test.mat";
  save_matrix_file(m, path);
  EXPECT_EQ(load_matrix_file(path), m);
  std::remove(path.c_str());
}

TEST(LinalgIo, FileErrorsThrow) {
  EXPECT_THROW(save_matrix_file(Matrix(2, 2, 1.0), "/nonexistent_dir_xyz/m.mat"),
               std::runtime_error);
  EXPECT_THROW(load_matrix_file("/nonexistent_dir_xyz/m.mat"), std::runtime_error);
}

// -- hostile-input hardening: a loader fed garbage must throw
//    std::runtime_error up front, never hand absurd sizes to the
//    allocator (bad_alloc / OOM-kill) and never crash. --

TEST(LinalgIo, AbsurdDimensionsRejectedBeforeAllocation) {
  for (const char* hostile : {
           "matrix 999999999999 999999999999\n",  // product overflows size_t.
           "matrix 1152921504606846976 1\n",      // 2^60 rows.
           "matrix 1 1152921504606846976\n",
           "matrix -4 -4\n",
           "vector 999999999999999999\n",
           "vector -7\n",
       }) {
    std::stringstream ss(hostile);
    if (std::string_view(hostile).rfind("vector", 0) == 0)
      EXPECT_THROW(load_vector(ss), std::runtime_error) << hostile;
    else
      EXPECT_THROW(load_matrix(ss), std::runtime_error) << hostile;
  }
}

TEST(LinalgIo, FuzzedHeadersNeverCrash) {
  // Seeded garbage headers: every outcome must be a clean throw.
  Rng rng(1234);
  const std::string alphabet = "matrixvector 0123456789-+.e\n\t";
  for (int trial = 0; trial < 200; ++trial) {
    std::string junk;
    const auto len = static_cast<std::size_t>(rng.uniform(1.0, 40.0));
    for (std::size_t i = 0; i < len; ++i)
      junk += alphabet[static_cast<std::size_t>(rng.uniform01() *
                                                static_cast<double>(alphabet.size()))];
    std::stringstream ss(junk);
    try {
      load_matrix(ss);
    } catch (const std::runtime_error&) {
      // expected for malformed input; anything else propagates and fails.
    }
  }
}

TEST(LinalgIo, TruncatedPayloadThrowsAtEveryCut) {
  Rng rng(5);
  const Matrix m = random_gaussian(3, 4, rng);
  std::stringstream full;
  save_matrix(m, full);
  const std::string text = full.str();
  // A cut inside the FINAL number's digits can leave a shorter but
  // still-valid double, which text parsing legitimately cannot detect;
  // only cut up to where the last value begins.
  const std::size_t last_value = text.find_last_of(" \n", text.size() - 2) + 1;
  for (std::size_t keep = 0; keep < last_value; keep += 7) {
    std::stringstream cut(text.substr(0, keep));
    EXPECT_THROW(load_matrix(cut), std::runtime_error) << "cut at " << keep;
  }
}

// -- binary codec (the persistence payload format) --

TEST(LinalgIo, BinaryMatrixRoundTripBitExact) {
  Rng rng(6);
  Matrix m = random_gaussian(4, 6, rng);
  m(1, 2) = std::numeric_limits<double>::quiet_NaN();
  m(2, 0) = -0.0;
  m(3, 5) = std::numeric_limits<double>::infinity();
  storage::ByteWriter w;
  save_matrix_binary(m, w);
  storage::ByteReader r(w.bytes());
  const Matrix back = load_matrix_binary(r);
  ASSERT_EQ(back.rows(), m.rows());
  ASSERT_EQ(back.cols(), m.cols());
  // operator== is exact; NaN != NaN, so compare bit patterns instead.
  for (std::size_t i = 0; i < m.rows(); ++i)
    for (std::size_t j = 0; j < m.cols(); ++j) {
      const double want = m(i, j);
      const double got = back(i, j);
      std::uint64_t a, b;
      std::memcpy(&a, &want, 8);
      std::memcpy(&b, &got, 8);
      EXPECT_EQ(a, b) << "(" << i << "," << j << ")";
    }
  EXPECT_TRUE(r.exhausted());
}

TEST(LinalgIo, BinaryVectorRoundTripBitExact) {
  const Vector v{1.5, -0.0, std::numeric_limits<double>::quiet_NaN()};
  storage::ByteWriter w;
  save_vector_binary(v, w);
  storage::ByteReader r(w.bytes());
  const Vector back = load_vector_binary(r);
  ASSERT_EQ(back.size(), 3u);
  std::uint64_t a, b;
  std::memcpy(&a, &v[2], 8);
  std::memcpy(&b, &back[2], 8);
  EXPECT_EQ(a, b);
}

TEST(LinalgIo, BinaryLoadRejectsAbsurdOrTruncatedInput) {
  // Claimed dimensions far beyond the payload must throw, not allocate.
  storage::ByteWriter w;
  w.put_u64(1ULL << 40);
  w.put_u64(1ULL << 40);
  storage::ByteReader r(w.bytes());
  EXPECT_THROW(load_matrix_binary(r), std::runtime_error);

  storage::ByteWriter w2;
  save_matrix_binary(Matrix(2, 2, 1.0), w2);
  const std::string bytes = w2.take();
  storage::ByteReader r2(std::string_view(bytes).substr(0, bytes.size() - 8));
  EXPECT_THROW(load_matrix_binary(r2), std::runtime_error);

  // A half-empty shape (0 x n, n > 0) is inconsistent.
  storage::ByteWriter w3;
  w3.put_u64(0);
  w3.put_u64(5);
  storage::ByteReader r3(w3.bytes());
  EXPECT_THROW(load_matrix_binary(r3), std::runtime_error);
}

}  // namespace
}  // namespace tafloc
