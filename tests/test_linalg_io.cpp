#include "tafloc/linalg/io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "tafloc/linalg/ops.h"
#include "tafloc/util/rng.h"

namespace tafloc {
namespace {

TEST(LinalgIo, MatrixRoundTripExact) {
  Rng rng(1);
  const Matrix m = random_gaussian(5, 7, rng);
  std::stringstream ss;
  save_matrix(m, ss);
  const Matrix back = load_matrix(ss);
  EXPECT_EQ(back.rows(), 5u);
  EXPECT_EQ(back.cols(), 7u);
  // precision 17 makes the text round trip bit-exact for doubles.
  EXPECT_EQ(back, m);
}

TEST(LinalgIo, EmptyMatrixRoundTrip) {
  std::stringstream ss;
  save_matrix(Matrix(), ss);
  const Matrix back = load_matrix(ss);
  EXPECT_TRUE(back.empty());
}

TEST(LinalgIo, VectorRoundTripExact) {
  const Vector v{1.0, -2.5, 3.25e-17, 1e300};
  std::stringstream ss;
  save_vector(v, ss);
  const Vector back = load_vector(ss);
  EXPECT_EQ(back, v);
}

TEST(LinalgIo, EmptyVectorRoundTrip) {
  std::stringstream ss;
  save_vector(Vector{}, ss);
  EXPECT_TRUE(load_vector(ss).empty());
}

TEST(LinalgIo, SequentialObjectsInOneStream) {
  Rng rng(2);
  const Matrix a = random_gaussian(2, 3, rng);
  const Vector v{9.0, 8.0};
  const Matrix b = random_gaussian(4, 1, rng);
  std::stringstream ss;
  save_matrix(a, ss);
  save_vector(v, ss);
  save_matrix(b, ss);
  EXPECT_EQ(load_matrix(ss), a);
  EXPECT_EQ(load_vector(ss), v);
  EXPECT_EQ(load_matrix(ss), b);
}

TEST(LinalgIo, LoadRejectsWrongTag) {
  std::stringstream ss("vector 2\n1 2\n");
  EXPECT_THROW(load_matrix(ss), std::runtime_error);
  std::stringstream ss2("matrix 1 1\n3\n");
  EXPECT_THROW(load_vector(ss2), std::runtime_error);
}

TEST(LinalgIo, LoadRejectsTruncatedValues) {
  std::stringstream ss("matrix 2 2\n1 2 3\n");
  EXPECT_THROW(load_matrix(ss), std::runtime_error);
}

TEST(LinalgIo, LoadRejectsBadDimensions) {
  std::stringstream ss("matrix -1 2\n");
  EXPECT_THROW(load_matrix(ss), std::runtime_error);
  std::stringstream ss2("matrix 0 2\n");
  EXPECT_THROW(load_matrix(ss2), std::runtime_error);
  std::stringstream ss3("matrix x y\n");
  EXPECT_THROW(load_matrix(ss3), std::runtime_error);
}

TEST(LinalgIo, FileRoundTrip) {
  Rng rng(3);
  const Matrix m = random_gaussian(3, 3, rng);
  const std::string path = std::string(::testing::TempDir()) + "tafloc_io_test.mat";
  save_matrix_file(m, path);
  EXPECT_EQ(load_matrix_file(path), m);
  std::remove(path.c_str());
}

TEST(LinalgIo, FileErrorsThrow) {
  EXPECT_THROW(save_matrix_file(Matrix(2, 2, 1.0), "/nonexistent_dir_xyz/m.mat"),
               std::runtime_error);
  EXPECT_THROW(load_matrix_file("/nonexistent_dir_xyz/m.mat"), std::runtime_error);
}

}  // namespace
}  // namespace tafloc
