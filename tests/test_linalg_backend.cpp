// Kernel backend dispatch (linalg/backend.h): resolution rules, and
// the bit-identity contract -- every backend must reproduce the scalar
// reference kernels' per-element results exactly, so backend selection
// can never change a served answer.
#include "tafloc/linalg/backend.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <vector>

#include "tafloc/linalg/matrix.h"
#include "tafloc/linalg/ops.h"
#include "tafloc/util/rng.h"

namespace tafloc {
namespace {

/// Restore the process-wide backend selection on scope exit, so these
/// tests cannot leak a forced backend into the rest of the suite.
struct BackendGuard {
  KernelBackend saved;
  BackendGuard() : saved(active_kernel_backend()) {}
  ~BackendGuard() { set_kernel_backend(saved); }
};

/// Restore (or clear) TAFLOC_KERNEL_BACKEND on scope exit.
struct EnvGuard {
  std::string saved;
  bool was_set;
  EnvGuard() {
    const char* v = std::getenv("TAFLOC_KERNEL_BACKEND");
    was_set = v != nullptr;
    if (was_set) saved = v;
  }
  ~EnvGuard() {
    if (was_set)
      ::setenv("TAFLOC_KERNEL_BACKEND", saved.c_str(), 1);
    else
      ::unsetenv("TAFLOC_KERNEL_BACKEND");
  }
};

TEST(KernelBackend, NamesAreStable) {
  EXPECT_STREQ(kernel_backend_name(KernelBackend::kAuto), "auto");
  EXPECT_STREQ(kernel_backend_name(KernelBackend::kScalar), "scalar");
  EXPECT_STREQ(kernel_backend_name(KernelBackend::kAvx2), "avx2");
}

TEST(KernelBackend, ExplicitResolution) {
  EXPECT_EQ(resolve_kernel_backend(KernelBackend::kScalar), KernelBackend::kScalar);
  if (cpu_supports_avx2()) {
    EXPECT_EQ(resolve_kernel_backend(KernelBackend::kAvx2), KernelBackend::kAvx2);
  } else {
    EXPECT_THROW(resolve_kernel_backend(KernelBackend::kAvx2), std::invalid_argument);
  }
}

TEST(KernelBackend, EnvironmentResolution) {
  EnvGuard env;
  ::setenv("TAFLOC_KERNEL_BACKEND", "scalar", 1);
  EXPECT_EQ(resolve_kernel_backend(), KernelBackend::kScalar);
  ::setenv("TAFLOC_KERNEL_BACKEND", "auto", 1);
  EXPECT_EQ(resolve_kernel_backend(),
            cpu_supports_avx2() ? KernelBackend::kAvx2 : KernelBackend::kScalar);
  ::setenv("TAFLOC_KERNEL_BACKEND", "sse9000", 1);
  EXPECT_THROW(resolve_kernel_backend(), std::invalid_argument);
  ::unsetenv("TAFLOC_KERNEL_BACKEND");
  EXPECT_EQ(resolve_kernel_backend(),
            cpu_supports_avx2() ? KernelBackend::kAvx2 : KernelBackend::kScalar);
}

TEST(KernelBackend, SetSelectsActiveTable) {
  BackendGuard guard;
  set_kernel_backend(KernelBackend::kScalar);
  EXPECT_EQ(active_kernel_backend(), KernelBackend::kScalar);
  EXPECT_EQ(kernel_ops().id, KernelBackend::kScalar);
  EXPECT_STREQ(kernel_ops().name, "scalar");
  if (cpu_supports_avx2()) {
    set_kernel_backend(KernelBackend::kAvx2);
    EXPECT_EQ(active_kernel_backend(), KernelBackend::kAvx2);
  }
}

TEST(KernelBackend, SpecificTableLookup) {
  EXPECT_EQ(kernel_ops(KernelBackend::kScalar).id, KernelBackend::kScalar);
  EXPECT_THROW(kernel_ops(KernelBackend::kAuto), std::invalid_argument);
  if (!cpu_supports_avx2()) EXPECT_THROW(kernel_ops(KernelBackend::kAvx2), std::invalid_argument);
}

// ---- bit-identity of the floating-point kernels ----

TEST(KernelBackend, AxpyBitIdenticalAcrossBackends) {
  if (!cpu_supports_avx2()) GTEST_SKIP() << "single backend on this CPU";
  const KernelOps& scalar = kernel_ops(KernelBackend::kScalar);
  const KernelOps& avx2 = kernel_ops(KernelBackend::kAvx2);
  Rng rng(7);
  // Sizes straddling the 4-lane vector width, including the pure-tail
  // cases, plus a denormal-scale multiplier and an exact-zero alpha.
  for (std::size_t n : {1u, 3u, 4u, 5u, 7u, 8u, 31u, 64u, 100u, 257u}) {
    for (double a : {0.737, -1.5e-12, 3.0e17, 0.0}) {
      std::vector<double> x(n), y0(n), y1(n);
      for (std::size_t i = 0; i < n; ++i) {
        x[i] = rng.normal() * 1e3;
        y0[i] = y1[i] = rng.normal();
      }
      scalar.axpy(a, x.data(), y0.data(), n);
      avx2.axpy(a, x.data(), y1.data(), n);
      for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(y0[i], y1[i]) << "n=" << n << " i=" << i;
    }
  }
}

TEST(KernelBackend, HadamardBitIdenticalAcrossBackends) {
  if (!cpu_supports_avx2()) GTEST_SKIP() << "single backend on this CPU";
  const KernelOps& scalar = kernel_ops(KernelBackend::kScalar);
  const KernelOps& avx2 = kernel_ops(KernelBackend::kAvx2);
  Rng rng(8);
  for (std::size_t n : {1u, 4u, 5u, 63u, 64u, 65u}) {
    std::vector<double> a(n), b(n), out0(n), out1(n);
    for (std::size_t i = 0; i < n; ++i) {
      a[i] = rng.normal() * 1e5;
      b[i] = rng.normal() * 1e-5;
    }
    scalar.hadamard(a.data(), b.data(), out0.data(), n);
    avx2.hadamard(a.data(), b.data(), out1.data(), n);
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(out0[i], out1[i]);
  }
}

// ---- exactness of the integer distance kernels ----

std::uint64_t dist_sq_i8_reference(const std::int8_t* a, const std::int8_t* b, std::size_t n) {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::int64_t d = static_cast<std::int64_t>(a[i]) - static_cast<std::int64_t>(b[i]);
    total += static_cast<std::uint64_t>(d * d);
  }
  return total;
}

TEST(KernelBackend, Int8DistanceExactOnEveryBackend) {
  Rng rng(9);
  // Sizes crossing the 16-lane step, the 32-element pad granule, and
  // the int32 anti-overflow chunk boundary (2^14).
  const std::size_t sizes[] = {1, 15, 16, 17, 31, 32, 33, 96, 255, (1u << 14) - 1, (1u << 14),
                               (1u << 14) + 5};
  for (std::size_t n : sizes) {
    std::vector<std::int8_t> a(n), b(n);
    for (std::size_t i = 0; i < n; ++i) {
      a[i] = static_cast<std::int8_t>(rng.uniform(-127.0, 128.0));
      b[i] = static_cast<std::int8_t>(rng.uniform(-127.0, 128.0));
    }
    // Plant worst-case magnitude diffs so lane arithmetic is stressed.
    if (n >= 4) {
      a[0] = 127;
      b[0] = -127;
      a[n - 1] = -127;
      b[n - 1] = 127;
    }
    const std::uint64_t expected = dist_sq_i8_reference(a.data(), b.data(), n);
    EXPECT_EQ(kernel_ops(KernelBackend::kScalar).dist_sq_i8(a.data(), b.data(), n), expected);
    if (cpu_supports_avx2())
      EXPECT_EQ(kernel_ops(KernelBackend::kAvx2).dist_sq_i8(a.data(), b.data(), n), expected)
          << "n=" << n;
  }
}

TEST(KernelBackend, Int8DistanceSurvivesWorstCaseAccumulation) {
  // 20 000 maximal diffs: 20 000 * 254^2 = 1.29e9 overflows int32 --
  // the chunked accumulation must not.
  const std::size_t n = 20000;
  std::vector<std::int8_t> a(n, 127), b(n, -127);
  const std::uint64_t expected = static_cast<std::uint64_t>(n) * 254u * 254u;
  EXPECT_EQ(kernel_ops(KernelBackend::kScalar).dist_sq_i8(a.data(), b.data(), n), expected);
  if (cpu_supports_avx2())
    EXPECT_EQ(kernel_ops(KernelBackend::kAvx2).dist_sq_i8(a.data(), b.data(), n), expected);
}

TEST(KernelBackend, MaskedInt8DistanceExactOnEveryBackend) {
  Rng rng(10);
  for (std::size_t n : {1u, 16u, 33u, 96u, 257u}) {
    std::vector<std::int8_t> a(n), b(n);
    std::vector<std::uint8_t> usable(n);
    for (std::size_t i = 0; i < n; ++i) {
      a[i] = static_cast<std::int8_t>(rng.uniform(-127.0, 128.0));
      b[i] = static_cast<std::int8_t>(rng.uniform(-127.0, 128.0));
      usable[i] = rng.uniform01() < 0.7 ? 1 : 0;
    }
    std::uint64_t expected = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (usable[i] == 0) continue;
      const std::int64_t d = static_cast<std::int64_t>(a[i]) - static_cast<std::int64_t>(b[i]);
      expected += static_cast<std::uint64_t>(d * d);
    }
    EXPECT_EQ(kernel_ops(KernelBackend::kScalar)
                  .dist_sq_i8_masked(a.data(), b.data(), usable.data(), n),
              expected);
    if (cpu_supports_avx2())
      EXPECT_EQ(kernel_ops(KernelBackend::kAvx2)
                    .dist_sq_i8_masked(a.data(), b.data(), usable.data(), n),
                expected)
          << "n=" << n;
  }
}

// ---- bit-identity of the matrix kernels that dispatch through the table ----

Matrix random_with_zeros(std::size_t rows, std::size_t cols, Rng& rng) {
  Matrix m = random_gaussian(rows, cols, rng);
  // Sprinkle exact zeros: the gemm's aik == 0 skip is semantic and must
  // behave identically in every backend.
  for (double& v : m.data())
    if (rng.uniform01() < 0.1) v = 0.0;
  return m;
}

TEST(KernelBackend, MatrixKernelsBitIdenticalAcrossBackends) {
  if (!cpu_supports_avx2()) GTEST_SKIP() << "single backend on this CPU";
  BackendGuard guard;
  Rng rng(11);
  const Matrix a = random_with_zeros(17, 23, rng);  // M x K
  const Matrix b = random_with_zeros(23, 29, rng);  // K x N
  const Matrix c = random_with_zeros(17, 29, rng);  // M x N
  const Vector x = random_gaussian(17, 1, rng).col(0);

  set_kernel_backend(KernelBackend::kScalar);
  Matrix gemm_s(17, 29), gram_s(23, 29), had_s(23, 29), axpy_s;
  Vector mt_s(23);
  multiply_into(a, b, gemm_s);
  gram_product_into(a.view(), c.view(), gram_s.view());
  multiply_transposed_into(a.view(), x, mt_s);
  hadamard_into(b.view(), b.view(), had_s.view());
  axpy_s = c;
  add_scaled_into(gemm_s.view(), -0.737, axpy_s.view());

  set_kernel_backend(KernelBackend::kAvx2);
  Matrix gemm_v(17, 29), gram_v(23, 29), had_v(23, 29), axpy_v;
  Vector mt_v(23);
  multiply_into(a, b, gemm_v);
  gram_product_into(a.view(), c.view(), gram_v.view());
  multiply_transposed_into(a.view(), x, mt_v);
  hadamard_into(b.view(), b.view(), had_v.view());
  axpy_v = c;
  add_scaled_into(gemm_v.view(), -0.737, axpy_v.view());

  EXPECT_EQ(gemm_s, gemm_v);
  EXPECT_EQ(gram_s, gram_v);
  EXPECT_EQ(had_s, had_v);
  EXPECT_EQ(axpy_s, axpy_v);
  for (std::size_t i = 0; i < mt_s.size(); ++i) EXPECT_EQ(mt_s[i], mt_v[i]);
}

TEST(KernelBackend, BlockedGemmMatchesUnblockedReference) {
  // The cache-blocked multiply_into must keep the ascending-k
  // per-element accumulation order of the simple i-k-j loop: same
  // sums, same rounding, bit-identical output.
  BackendGuard guard;
  set_kernel_backend(KernelBackend::kScalar);
  Rng rng(12);
  // Sizes past the panel (8), k-block (256) and j-tile boundaries.
  struct Dim {
    std::size_t m, k, n;
  };
  for (const Dim d : {Dim{3, 5, 4}, Dim{9, 257, 17}, Dim{16, 300, 70}}) {
    const Matrix a = random_with_zeros(d.m, d.k, rng);
    const Matrix b = random_with_zeros(d.k, d.n, rng);
    Matrix blocked(d.m, d.n);
    multiply_into(a, b, blocked);
    Matrix reference(d.m, d.n, 0.0);
    for (std::size_t i = 0; i < d.m; ++i) {
      for (std::size_t kk = 0; kk < d.k; ++kk) {
        const double aik = a(i, kk);
        if (aik == 0.0) continue;
        for (std::size_t j = 0; j < d.n; ++j) reference(i, j) += aik * b(kk, j);
      }
    }
    EXPECT_EQ(blocked, reference) << d.m << "x" << d.k << "x" << d.n;
  }
}

}  // namespace
}  // namespace tafloc
