// Batch ingest through the daemon: wire round trips for the v4
// kBatchIngest packets, movement-gated admission on the zone, and the
// transport torture contract -- duplicated, reordered, stale-replayed
// delivery must produce bit-identical localization results and exact
// drop accounting versus clean delivery.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "tafloc/daemon/wire.h"
#include "tafloc/daemon/zone.h"
#include "tafloc/sim/node_net.h"
#include "tafloc/sim/scenario.h"
#include "tafloc/storage/codec.h"
#include "tafloc/storage/record.h"
#include "tafloc/util/rng.h"

namespace tafloc::daemon {
namespace {

storage::Frame reframe(const std::string& bytes) {
  storage::Frame frame;
  std::size_t pos = 0;
  EXPECT_EQ(storage::decode_frame(bytes, pos, frame), storage::FrameStatus::kOk);
  EXPECT_EQ(pos, bytes.size());
  return frame;
}

TEST(DaemonWireIngest, BatchIngestRequestRoundTripsIncludingNaN) {
  BatchIngestRequest req;
  req.zone = "office";
  req.batch.node_id = 9;
  req.batch.readings = {{0, -41.5, 1, 0.25},
                        {3, std::numeric_limits<double>::quiet_NaN(), 2, 0.25}};
  const storage::Frame frame = reframe(req.encode(5));
  EXPECT_EQ(frame.type, static_cast<std::uint32_t>(PacketType::kBatchIngestRequest));
  const BatchIngestRequest back = BatchIngestRequest::decode(frame);
  EXPECT_EQ(back.zone, "office");
  EXPECT_TRUE(back.batch == req.batch);  // bit-exact, NaN included.
}

TEST(DaemonWireIngest, BatchIngestResponseRoundTripsEveryField) {
  BatchIngestResponse res;
  res.status = WireStatus::kOk;
  res.readings = 10;
  res.dups_dropped = 3;
  res.stale_dropped = 2;
  res.bad_readings = 1;
  res.rounds_completed = 4;
  res.gated_ambient = 3;
  res.admitted_queries = 1;
  res.last_motion_db = 2.125;
  IngestQuery q;
  q.t_days = 0.5;
  q.motion_db = 3.25;
  q.x = 2.75;
  q.y = 1.5;
  q.confidence = 0.875;
  q.served = true;
  q.degraded = true;
  q.links_used = 12;
  res.queries.push_back(q);

  const BatchIngestResponse back = BatchIngestResponse::decode(reframe(res.encode(5)));
  EXPECT_EQ(back.readings, 10u);
  EXPECT_EQ(back.dups_dropped, 3u);
  EXPECT_EQ(back.stale_dropped, 2u);
  EXPECT_EQ(back.bad_readings, 1u);
  EXPECT_EQ(back.rounds_completed, 4u);
  EXPECT_EQ(back.gated_ambient, 3u);
  EXPECT_EQ(back.admitted_queries, 1u);
  EXPECT_EQ(back.last_motion_db, 2.125);
  ASSERT_EQ(back.queries.size(), 1u);
  EXPECT_EQ(back.queries[0].t_days, 0.5);
  EXPECT_EQ(back.queries[0].motion_db, 3.25);
  EXPECT_EQ(back.queries[0].x, 2.75);
  EXPECT_EQ(back.queries[0].y, 1.5);
  EXPECT_EQ(back.queries[0].confidence, 0.875);
  EXPECT_TRUE(back.queries[0].served);
  EXPECT_TRUE(back.queries[0].degraded);
  EXPECT_EQ(back.queries[0].links_used, 12u);
}

TEST(DaemonWireIngest, AmbientResponseCarriesTheSampleVerdict) {
  AmbientResponse res;
  res.accepted = true;
  res.sample_accepted = false;  // admitted but dropped by the scheduler.
  res.triggered = false;
  res.staleness_db = 1.5;
  const AmbientResponse back = AmbientResponse::decode(reframe(res.encode(3)));
  EXPECT_TRUE(back.accepted);
  EXPECT_FALSE(back.sample_accepted);
  EXPECT_EQ(back.staleness_db, 1.5);
}

TEST(DaemonWireIngest, VersionSkewIsARejectNotAMisparse) {
  BatchIngestRequest req;
  req.zone = "office";
  req.batch.readings = {{0, -40.0, 1, 0.5}};
  storage::Frame frame = reframe(req.encode(1));
  // Rewrite the outer wire-version word to a future generation.
  ASSERT_GE(frame.payload.size(), 4u);
  const std::uint32_t future = kWireVersion + 1;
  std::memcpy(frame.payload.data(), &future, sizeof future);
  try {
    (void)BatchIngestRequest::decode(
        reframe(storage::encode_frame(frame.type, frame.seq, frame.payload)));
    FAIL() << "future-version payload must not decode";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos) << e.what();
  }
}

// ---- zone-level gating ----

constexpr std::uint64_t kSeed = 4242;

ZoneConfig ingest_zone_config(const std::string& name) {
  ZoneConfig config;
  config.name = name;
  config.seed = kSeed;
  // Calibrated against the measured separation at small t on this seed:
  // ambient rounds read ~0.28-0.68 dB against a fresh baseline, target
  // rounds >= ~1.6 dB.
  config.ingest.motion_threshold_db = 1.2;
  return config;
}

TEST(ZoneIngest, MovementGateRoutesRoundsExactly) {
  Zone zone(ingest_zone_config("gate"), nullptr);
  zone.start();

  Scenario scenario = Scenario::paper_room(kSeed);
  Rng traffic(123);
  NodeNetwork net(scenario.deployment().num_links(), 3);

  // An ambient round: below the gate, absorbed as a scheduler sample --
  // the zone clock advances, no query is served.
  const Vector ambient = scenario.collector().observe_ambient(0.002, traffic);
  Zone::IngestResult last;
  for (const auto& batch : net.emit_round(ambient, 0.002)) last = zone.ingest_batch(batch);
  EXPECT_TRUE(last.accepted);
  EXPECT_EQ(last.rounds_completed, 1u);
  EXPECT_EQ(last.gated_ambient, 1u);
  EXPECT_EQ(last.admitted_queries, 0u);
  EXPECT_LT(last.last_motion_db, 1.2);
  EXPECT_TRUE(last.queries.empty());
  EXPECT_EQ(zone.status().clock_days, 0.002);

  // A target round: above the gate, served as a localize query inline
  // -- and a query must NOT advance the zone clock (only accepted
  // ambient samples and resurveys drive time).
  const Vector target =
      scenario.collector().observe(scenario.deployment().grid().center(40), 0.004, traffic);
  for (const auto& batch : net.emit_round(target, 0.004)) last = zone.ingest_batch(batch);
  EXPECT_EQ(last.rounds_completed, 1u);
  EXPECT_EQ(last.admitted_queries, 1u);
  EXPECT_GE(last.last_motion_db, 1.2);
  ASSERT_EQ(last.queries.size(), 1u);
  EXPECT_TRUE(last.queries[0].result.served);
  EXPECT_EQ(last.queries[0].t_days, 0.004);
  EXPECT_EQ(zone.status().clock_days, 0.002);
  EXPECT_EQ(zone.status().queries, 1u);

  // Ingest telemetry surfaces the same accounting.
  const std::string json = zone.telemetry_json();
  EXPECT_NE(json.find("\"ingest.gated_ambient\""), std::string::npos);
  EXPECT_NE(json.find("\"ingest.admitted_queries\""), std::string::npos);
  zone.drain();
}

TEST(ZoneIngest, RefusedWhenNotAdmissible) {
  Zone zone(ingest_zone_config("closed"), nullptr);
  // Never started: not admissible, nothing is ingested or counted.
  ingest::NodeBatch batch;
  batch.node_id = 0;
  batch.readings = {{0, -40.0, 1, 0.001}};
  const Zone::IngestResult result = zone.ingest_batch(batch);
  EXPECT_FALSE(result.accepted);
  EXPECT_EQ(result.readings, 0u);
}

// ---- the transport torture contract ----

TEST(ZoneIngest, PerturbedDeliveryIsBitIdenticalToCleanDelivery) {
  // Zone A gets clean node traffic; zone B gets the same physical
  // measurements duplicated, shuffled, and chased by stale replays.
  // Dedup + merge must make the perturbation invisible: every
  // localization answer bit-identical, every drop accounted for.
  Zone clean_zone(ingest_zone_config("clean"), nullptr);
  Zone dirty_zone(ingest_zone_config("dirty"), nullptr);
  clean_zone.start();
  dirty_zone.start();

  Scenario scenario = Scenario::paper_room(kSeed);
  const std::size_t num_links = scenario.deployment().num_links();
  Rng traffic(77);
  Rng chaos(42);
  NodeNetwork net(num_links, 4);

  std::vector<Zone::IngestResult::Query> clean_queries;
  std::vector<Zone::IngestResult::Query> dirty_queries;
  std::uint64_t clean_readings = 0, dirty_readings = 0;
  std::uint64_t dirty_dups = 0, dirty_stale = 0;
  std::uint64_t expected_dups = 0;
  const int kRounds = 12;

  for (int i = 0; i < kRounds; ++i) {
    const double t = 0.001 * (i + 1);
    const bool moving = (i % 3) == 2;  // every third round has a target.
    const Vector y =
        moving ? scenario.collector().observe(scenario.deployment().grid().center(20 + i), t,
                                              traffic)
               : scenario.collector().observe_ambient(t, traffic);

    // One emission: both zones see the same physical measurements.
    const std::vector<ingest::NodeBatch> batches = net.emit_round(y, t);
    for (const auto& b : batches) {
      const Zone::IngestResult r = clean_zone.ingest_batch(b);
      clean_readings += r.readings;
      for (const auto& q : r.queries) clean_queries.push_back(q);
    }

    // Perturbed copy: every batch duplicated, delivery order shuffled.
    std::vector<ingest::NodeBatch> perturbed = batches;
    NodeNetwork::perturb(perturbed, /*dup_fraction=*/1.0, /*shuffle=*/true, chaos);
    for (const auto& b : batches) expected_dups += b.readings.size();
    for (const auto& b : perturbed) {
      const Zone::IngestResult r = dirty_zone.ingest_batch(b);
      dirty_readings += r.readings;
      dirty_dups += r.dups_dropped;
      dirty_stale += r.stale_dropped;
      for (const auto& q : r.queries) dirty_queries.push_back(q);
    }

    // Stale replay: a late straggler (fresh node, fresh sequence) for
    // the round that just closed carries no information.
    ingest::NodeBatch straggler;
    straggler.node_id = 900 + static_cast<std::uint32_t>(i);
    straggler.readings = {{0, y[0], 1, t}};
    const Zone::IngestResult r = dirty_zone.ingest_batch(straggler);
    dirty_stale += r.stale_dropped;
    EXPECT_EQ(r.stale_dropped, 1u);
  }

  // Exact accounting: the perturbation is fully explained.
  EXPECT_EQ(clean_readings, num_links * kRounds);
  EXPECT_EQ(dirty_readings, clean_readings);
  EXPECT_EQ(dirty_dups, expected_dups);
  EXPECT_EQ(dirty_stale, static_cast<std::uint64_t>(kRounds));

  // Bit-identical serving: same rounds admitted, same answers.
  ASSERT_EQ(dirty_queries.size(), clean_queries.size());
  ASSERT_EQ(clean_queries.size(), static_cast<std::size_t>(kRounds / 3));
  for (std::size_t i = 0; i < clean_queries.size(); ++i) {
    EXPECT_EQ(dirty_queries[i].t_days, clean_queries[i].t_days);
    EXPECT_EQ(dirty_queries[i].motion_db, clean_queries[i].motion_db);
    EXPECT_EQ(dirty_queries[i].result.point.x, clean_queries[i].result.point.x);
    EXPECT_EQ(dirty_queries[i].result.point.y, clean_queries[i].result.point.y);
    EXPECT_EQ(dirty_queries[i].result.confidence, clean_queries[i].result.confidence);
    EXPECT_EQ(dirty_queries[i].result.links_used, clean_queries[i].result.links_used);
    EXPECT_EQ(dirty_queries[i].result.served, clean_queries[i].result.served);
    EXPECT_EQ(dirty_queries[i].result.degraded, clean_queries[i].result.degraded);
  }

  // And the zones themselves marched in lockstep.
  EXPECT_EQ(clean_zone.status().clock_days, dirty_zone.status().clock_days);
  EXPECT_EQ(clean_zone.status().queries, dirty_zone.status().queries);
  clean_zone.drain();
  dirty_zone.drain();
}

}  // namespace
}  // namespace tafloc::daemon
