#include "tafloc/linalg/vector_ops.h"

#include <gtest/gtest.h>

#include <vector>

namespace tafloc {
namespace {

TEST(VectorOps, Dot) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  const std::vector<double> b{4.0, -5.0, 6.0};
  EXPECT_DOUBLE_EQ(dot(a, b), 12.0);
}

TEST(VectorOps, DotRejectsMismatch) {
  const std::vector<double> a{1.0};
  const std::vector<double> b{1.0, 2.0};
  EXPECT_THROW(dot(a, b), std::invalid_argument);
}

TEST(VectorOps, Norm2) {
  const std::vector<double> v{3.0, 4.0};
  EXPECT_DOUBLE_EQ(norm2(v), 5.0);
  const std::vector<double> empty;
  EXPECT_DOUBLE_EQ(norm2(empty), 0.0);
}

TEST(VectorOps, NormInf) {
  const std::vector<double> v{-7.0, 2.0, 5.0};
  EXPECT_DOUBLE_EQ(norm_inf(v), 7.0);
}

TEST(VectorOps, Axpy) {
  const std::vector<double> x{1.0, 2.0};
  std::vector<double> y{10.0, 20.0};
  axpy(2.0, x, y);
  EXPECT_DOUBLE_EQ(y[0], 12.0);
  EXPECT_DOUBLE_EQ(y[1], 24.0);
}

TEST(VectorOps, AxpyRejectsMismatch) {
  const std::vector<double> x{1.0};
  std::vector<double> y{1.0, 2.0};
  EXPECT_THROW(axpy(1.0, x, y), std::invalid_argument);
}

TEST(VectorOps, Scale) {
  std::vector<double> v{1.0, -2.0};
  scale(v, -3.0);
  EXPECT_DOUBLE_EQ(v[0], -3.0);
  EXPECT_DOUBLE_EQ(v[1], 6.0);
}

TEST(VectorOps, AddSubtract) {
  const std::vector<double> a{1.0, 2.0};
  const std::vector<double> b{0.5, -0.5};
  const Vector s = add(a, b);
  const Vector d = subtract(a, b);
  EXPECT_DOUBLE_EQ(s[0], 1.5);
  EXPECT_DOUBLE_EQ(s[1], 1.5);
  EXPECT_DOUBLE_EQ(d[0], 0.5);
  EXPECT_DOUBLE_EQ(d[1], 2.5);
}

TEST(VectorOps, Distance2) {
  const std::vector<double> a{0.0, 0.0};
  const std::vector<double> b{3.0, 4.0};
  EXPECT_DOUBLE_EQ(distance2(a, b), 5.0);
}

TEST(VectorOps, NormalizeUnitResult) {
  std::vector<double> v{3.0, 4.0};
  const double n = normalize(v);
  EXPECT_DOUBLE_EQ(n, 5.0);
  EXPECT_DOUBLE_EQ(norm2(v), 1.0);
  EXPECT_DOUBLE_EQ(v[0], 0.6);
}

TEST(VectorOps, NormalizeZeroVectorIsNoop) {
  std::vector<double> v{0.0, 0.0};
  EXPECT_DOUBLE_EQ(normalize(v), 0.0);
  EXPECT_DOUBLE_EQ(v[0], 0.0);
}

}  // namespace
}  // namespace tafloc
