// Property suite for the two-tier KNN scan (matcher.h): the int8
// pre-pass + exact re-rank must return the SAME top-k -- neighbour
// indices in the same order AND bit-identical distances, hence
// bit-identical weighted centroids -- as the plain float scan, for
// every database, mask state, and k.  "Same speed class, same answer"
// is the whole contract of the quantized tier.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "tafloc/fingerprint/link_health.h"
#include "tafloc/fingerprint/quantized.h"
#include "tafloc/linalg/ops.h"
#include "tafloc/loc/matcher.h"
#include "tafloc/sim/grid.h"
#include "tafloc/telemetry/metrics.h"
#include "tafloc/util/rng.h"

namespace tafloc {
namespace {

struct Fixture {
  Matrix fingerprints;
  GridMap grid;
  QuantizedTier tier;

  Fixture(std::size_t links, std::size_t grid_w, std::size_t grid_h, std::uint64_t seed)
      : grid(static_cast<double>(grid_w), static_cast<double>(grid_h), 1.0) {
    Rng rng(seed);
    const std::size_t cells = grid_w * grid_h;
    fingerprints = random_gaussian(links, cells, rng);
    for (std::size_t i = 0; i < links; ++i) {
      const double offset = -70.0 + 3.0 * static_cast<double>(i % 11);
      for (std::size_t j = 0; j < cells; ++j)
        fingerprints(i, j) = offset + 5.0 * fingerprints(i, j);
    }
    // Exact duplicate columns and a near-tie: the pre-pass must resolve
    // them with the same (distance, index) rule as the float scan.
    if (cells >= 8) {
      for (std::size_t i = 0; i < links; ++i) {
        fingerprints(i, 5) = fingerprints(i, 2);
        fingerprints(i, 7) = fingerprints(i, 2) + (i == 0 ? 1e-9 : 0.0);
      }
    }
    tier.rebuild(fingerprints.view());
  }

  std::vector<Vector> make_queries(std::size_t count, std::uint64_t seed) const {
    Rng rng(seed);
    std::vector<Vector> queries;
    const std::size_t cells = fingerprints.cols();
    for (std::size_t q = 0; q < count; ++q) {
      Vector query = fingerprints.col((q * 13) % cells);
      for (double& v : query) v += 2.0 * rng.normal();
      queries.push_back(std::move(query));
    }
    // One far-from-everything query (stresses the widening bound) and
    // one exact-column query (distance 0 ties).
    queries.push_back(Vector(fingerprints.rows(), -20.0));
    queries.push_back(fingerprints.col(2));
    return queries;
  }
};

void expect_identical(const KnnMatcher& exact, const KnnMatcher& quantized, const Vector& query,
                      const char* label) {
  const std::vector<std::size_t> n_exact = exact.nearest_grids(query);
  const std::vector<std::size_t> n_quant = quantized.nearest_grids(query);
  EXPECT_EQ(n_exact, n_quant) << label;
  const Point2 p_exact = exact.localize(query);
  const Point2 p_quant = quantized.localize(query);
  // Bit-identical, not approximately equal: the re-rank reuses the
  // exact float kernels, so the weighted centroid must match exactly.
  EXPECT_EQ(p_exact.x, p_quant.x) << label;
  EXPECT_EQ(p_exact.y, p_quant.y) << label;
}

TEST(QuantizedMatcher, TopKMatchesExactFloatScan) {
  for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    for (const auto& [links, w, h] : {std::tuple<std::size_t, std::size_t, std::size_t>{6, 8, 5},
                                      {33, 12, 8}, {10, 15, 10}}) {
      Fixture f(links, w, h, seed);
      ASSERT_TRUE(f.tier.ready());
      for (std::size_t k : {1u, 3u, 8u}) {
        KnnMatcher exact(f.fingerprints.view(), f.grid, k);
        KnnMatcher quantized(f.fingerprints.view(), f.grid, k);
        quantized.attach_quantized_tier(&f.tier);
        ASSERT_TRUE(quantized.quantized_active());
        for (const Vector& q : f.make_queries(12, seed * 97 + k))
          expect_identical(exact, quantized, q, "unmasked");
      }
    }
  }
}

TEST(QuantizedMatcher, MaskedScanMatchesExactFloatScan) {
  for (std::uint64_t seed : {5u, 6u}) {
    Fixture f(12, 10, 8, seed);
    LinkHealth health(12);
    health.mark_dead(1);
    health.mark_dead(7);
    health.mark_suspect(3);
    ASSERT_LT(health.usable_count(), 12u);
    KnnMatcher exact(f.fingerprints.view(), f.grid, 4);
    KnnMatcher quantized(f.fingerprints.view(), f.grid, 4);
    exact.attach_link_health(&health);
    quantized.attach_link_health(&health);
    quantized.attach_quantized_tier(&f.tier);
    for (Vector q : f.make_queries(10, seed)) {
      // NaN parked on a dead link: exactly the fault the mask covers.
      q[1] = std::nan("");
      expect_identical(exact, quantized, q, "masked");
    }
  }
}

TEST(QuantizedMatcher, AllLinksDeadThrowsOnBothPaths) {
  Fixture f(5, 6, 4, 9);
  LinkHealth health(5);
  for (std::size_t i = 0; i < 5; ++i) health.mark_dead(i);
  KnnMatcher exact(f.fingerprints.view(), f.grid, 3);
  KnnMatcher quantized(f.fingerprints.view(), f.grid, 3);
  exact.attach_link_health(&health);
  quantized.attach_link_health(&health);
  quantized.attach_quantized_tier(&f.tier);
  const Vector q(5, -50.0);
  EXPECT_THROW(exact.localize(q), std::invalid_argument);
  EXPECT_THROW(quantized.localize(q), std::invalid_argument);
}

TEST(QuantizedMatcher, WideningPreservesExactness) {
  // One outlier column stretches the shared scale so the remaining
  // columns' differences fall below one quantization level: integer
  // distances collapse into ties, the candidate-prefix proof cannot
  // separate them, and the scan must widen (observable via telemetry)
  // all the way to a full exact re-rank -- results still bit-identical
  // to the float scan.
  const std::size_t links = 8, cells = 120;
  Matrix fp(links, cells);
  Rng rng(10);
  for (std::size_t i = 0; i < links; ++i)
    for (std::size_t j = 0; j < cells; ++j) fp(i, j) = -55.0 + 1e-3 * rng.normal();
  fp(0, 0) = -55.0 + 120.0;  // outlier: link-0 half-range ~60 dB, scale ~0.5
  GridMap grid(12.0, 10.0, 1.0);
  QuantizedTier tier;
  tier.rebuild(fp.view());
  ASSERT_TRUE(tier.ready());

  KnnMatcher exact(fp.view(), grid, 5);
  KnnMatcher quantized(fp.view(), grid, 5);
  quantized.attach_quantized_tier(&tier);
  MetricRegistry registry;
  quantized.attach_telemetry(&registry);

  Rng qrng(11);
  for (int t = 0; t < 6; ++t) {
    Vector q(links);
    for (double& v : q) v = -55.0 + 1e-3 * qrng.normal();
    expect_identical(exact, quantized, q, "near-tie grid");
  }
  EXPECT_GT(registry.counter("loc.knn.prepass_queries").value(), 0u);
  EXPECT_GT(registry.counter("loc.knn.rerank_widenings").value(), 0u);
}

TEST(QuantizedMatcher, RerankMultiplierNeverChangesResults) {
  Fixture f(9, 10, 6, 12);
  KnnMatcher exact(f.fingerprints.view(), f.grid, 4);
  for (std::size_t alpha : {1u, 2u, 16u}) {
    KnnMatcher quantized(f.fingerprints.view(), f.grid, 4);
    quantized.attach_quantized_tier(&f.tier);
    quantized.set_rerank_multiplier(alpha);
    for (const Vector& q : f.make_queries(8, 13))
      expect_identical(exact, quantized, q, "alpha sweep");
  }
  KnnMatcher bad(f.fingerprints.view(), f.grid, 4);
  EXPECT_THROW(bad.set_rerank_multiplier(0), std::invalid_argument);
}

TEST(QuantizedMatcher, BatchMatchesSequential) {
  Fixture f(16, 12, 8, 14);
  KnnMatcher exact(f.fingerprints.view(), f.grid, 4);
  KnnMatcher quantized(f.fingerprints.view(), f.grid, 4);
  quantized.attach_quantized_tier(&f.tier);
  const std::vector<Vector> queries = f.make_queries(24, 15);
  const std::vector<Point2> batch = quantized.localize_batch(queries);
  ASSERT_EQ(batch.size(), queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const Point2 p = exact.localize(queries[i]);
    EXPECT_EQ(batch[i].x, p.x) << i;
    EXPECT_EQ(batch[i].y, p.y) << i;
  }
}

TEST(QuantizedMatcher, StaleTierFallsBackToFloatScan) {
  Fixture f(7, 8, 5, 16);
  KnnMatcher matcher(f.fingerprints.view(), f.grid, 3);
  EXPECT_FALSE(matcher.quantized_active());  // no tier attached
  QuantizedTier wrong_shape;
  Rng rng(17);
  const Matrix other = random_gaussian(4, 40, rng);
  wrong_shape.rebuild(other.view());
  matcher.attach_quantized_tier(&wrong_shape);
  EXPECT_FALSE(matcher.quantized_active());  // shape mismatch ignored
  QuantizedTier empty;
  matcher.attach_quantized_tier(&empty);
  EXPECT_FALSE(matcher.quantized_active());  // not ready() ignored
  // Either way the query serves through the float path.
  const Vector q = f.fingerprints.col(3);
  KnnMatcher plain(f.fingerprints.view(), f.grid, 3);
  const Point2 a = matcher.localize(q);
  const Point2 b = plain.localize(q);
  EXPECT_EQ(a.x, b.x);
  EXPECT_EQ(a.y, b.y);
  matcher.attach_quantized_tier(nullptr);
  EXPECT_FALSE(matcher.quantized_active());
}

}  // namespace
}  // namespace tafloc
