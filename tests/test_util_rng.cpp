#include "tafloc/util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "tafloc/util/stats.h"

namespace tafloc {
namespace {

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiffer) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(SplitMix64, NearbySeedsDecorrelate) {
  // Successive outputs from adjacent seeds should not be simply offset.
  SplitMix64 a(100);
  SplitMix64 b(101);
  const std::uint64_t d1 = b.next() - a.next();
  const std::uint64_t d2 = b.next() - a.next();
  EXPECT_NE(d1, d2);
}

TEST(Rng, SameSeedSameStream) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 32; ++i) EXPECT_DOUBLE_EQ(a.uniform01(), b.uniform01());
}

TEST(Rng, DifferentSeedsDifferentStreams) {
  Rng a(7);
  Rng b(8);
  int equal = 0;
  for (int i = 0; i < 32; ++i)
    if (a.uniform01() == b.uniform01()) ++equal;
  EXPECT_LT(equal, 4);
}

TEST(Rng, Uniform01InRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform01();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-2.5, 4.5);
    EXPECT_GE(x, -2.5);
    EXPECT_LT(x, 4.5);
  }
}

TEST(Rng, UniformRejectsEmptyRange) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform(1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(rng.uniform(2.0, 1.0), std::invalid_argument);
}

TEST(Rng, NormalMomentsRoughlyCorrect) {
  Rng rng(11);
  RunningStats st;
  for (int i = 0; i < 20000; ++i) st.add(rng.normal());
  EXPECT_NEAR(st.mean(), 0.0, 0.05);
  EXPECT_NEAR(st.stddev(), 1.0, 0.05);
}

TEST(Rng, NormalWithParamsShiftsAndScales) {
  Rng rng(12);
  RunningStats st;
  for (int i = 0; i < 20000; ++i) st.add(rng.normal(5.0, 2.0));
  EXPECT_NEAR(st.mean(), 5.0, 0.1);
  EXPECT_NEAR(st.stddev(), 2.0, 0.1);
}

TEST(Rng, NormalZeroSigmaIsDeterministic) {
  Rng rng(1);
  EXPECT_DOUBLE_EQ(rng.normal(3.5, 0.0), 3.5);
}

TEST(Rng, NormalRejectsNegativeSigma) {
  Rng rng(1);
  EXPECT_THROW(rng.normal(0.0, -1.0), std::invalid_argument);
}

TEST(Rng, IndexStaysInRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.index(17), 17u);
}

TEST(Rng, IndexCoversAllValues) {
  Rng rng(9);
  std::set<std::size_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.index(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, IndexRejectsEmptyRange) {
  Rng rng(1);
  EXPECT_THROW(rng.index(0), std::invalid_argument);
}

TEST(Rng, IntegerInclusiveBounds) {
  Rng rng(13);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.integer(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliRejectsBadProbability) {
  Rng rng(5);
  EXPECT_THROW(rng.bernoulli(-0.1), std::invalid_argument);
  EXPECT_THROW(rng.bernoulli(1.1), std::invalid_argument);
}

TEST(Rng, BernoulliFrequencyMatchesP) {
  Rng rng(6);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(21);
  Rng child = parent.fork();
  // Child and parent streams should diverge immediately.
  int equal = 0;
  for (int i = 0; i < 32; ++i)
    if (parent.uniform01() == child.uniform01()) ++equal;
  EXPECT_LT(equal, 4);
}

TEST(Rng, SuccessiveForksDiffer) {
  Rng parent(21);
  Rng c1 = parent.fork();
  Rng c2 = parent.fork();
  EXPECT_NE(c1.uniform01(), c2.uniform01());
}

TEST(Rng, SampleWithoutReplacementIsDistinct) {
  Rng rng(33);
  const auto sample = rng.sample_without_replacement(100, 40);
  EXPECT_EQ(sample.size(), 40u);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 40u);
  for (std::size_t v : sample) EXPECT_LT(v, 100u);
}

TEST(Rng, SampleWithoutReplacementFullPopulation) {
  Rng rng(33);
  auto sample = rng.sample_without_replacement(10, 10);
  std::sort(sample.begin(), sample.end());
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(sample[i], i);
}

TEST(Rng, SampleWithoutReplacementRejectsOversample) {
  Rng rng(1);
  EXPECT_THROW(rng.sample_without_replacement(5, 6), std::invalid_argument);
}

TEST(Rng, ShuffleKeepsElements) {
  Rng rng(44);
  std::vector<std::size_t> v{0, 1, 2, 3, 4, 5, 6, 7};
  auto w = v;
  rng.shuffle(w);
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng rng(44);
  std::vector<std::size_t> v(50);
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = i;
  auto w = v;
  rng.shuffle(w);
  EXPECT_NE(v, w);
}

}  // namespace
}  // namespace tafloc
