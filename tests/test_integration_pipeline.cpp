// End-to-end integration tests: the complete TafLoc lifecycle on the
// simulated paper room, plus the cross-system comparison the paper's
// Fig. 5 reports.  These are the "does the whole thing hang together"
// tests; per-module behaviour is covered in the unit files.
#include <gtest/gtest.h>

#include "tafloc/baselines/rass.h"
#include "tafloc/baselines/rti.h"
#include "tafloc/loc/metrics.h"
#include "tafloc/recon/error.h"
#include "tafloc/sim/scenario.h"
#include "tafloc/sim/survey_cost.h"
#include "tafloc/sim/trace.h"
#include "tafloc/tafloc/system.h"

namespace tafloc {
namespace {

/// Shared fixture: one calibrated room, observed at 3 months.
class PipelineTest : public ::testing::Test {
 protected:
  static constexpr double kEvalDay = 90.0;

  PipelineTest() : scenario_(Scenario::paper_room(61)), rng_(61) {
    x0_ = scenario_.collector().survey_all(0.0, rng_);
    ambient0_ = scenario_.collector().ambient_scan(0.0, rng_);
    ambient_now_ = scenario_.collector().ambient_scan(kEvalDay, rng_);

    // Evaluation set: continuous positions (fine-grained), with their
    // noisy observations at eval time.
    auto targets = random_positions(scenario_.deployment().grid(), 30, rng_);
    for (const Point2& p : targets) {
      truths_.push_back(p);
      observations_.push_back(scenario_.collector().observe(p, kEvalDay, rng_));
    }
  }

  double mean_error(const Localizer& loc) {
    const auto errs = evaluate_localizer(loc, observations_, truths_);
    return summarize_errors(errs).mean;
  }

  Scenario scenario_;
  Rng rng_;
  Matrix x0_;
  Vector ambient0_;
  Vector ambient_now_;
  std::vector<std::vector<double>> observations_;
  std::vector<Point2> truths_;
};

TEST_F(PipelineTest, FullLifecycleRuns) {
  TafLocSystem system(scenario_.deployment());
  system.calibrate(x0_, ambient0_, 0.0);
  const auto report = system.update_with_collector(scenario_.collector(), kEvalDay, rng_);
  EXPECT_GT(report.solver.outer_iterations, 0u);
  const double err = mean_error(system);
  EXPECT_LT(err, 2.2);  // paper band: TafLoc stays best at 3 months
}

TEST_F(PipelineTest, Fig5OrderingTafLocBeatsStaleRass) {
  // TafLoc (reconstructed) vs RASS w/o reconstruction: TafLoc wins.
  TafLocSystem tafloc(scenario_.deployment());
  tafloc.calibrate(x0_, ambient0_, 0.0);
  tafloc.update_with_collector(scenario_.collector(), kEvalDay, rng_);

  const FingerprintDatabase stale_db(x0_, ambient0_, 0.0);
  const RassLocalizer rass_stale(scenario_.deployment(), stale_db, ambient_now_, RassConfig{},
                                 "RASS w/o rec.");

  EXPECT_LT(mean_error(tafloc), mean_error(rass_stale));
}

TEST_F(PipelineTest, Fig5ReconstructionHelpsRass) {
  // Plugging TafLoc's reconstructed database into RASS improves it --
  // the paper's transferability claim.
  TafLocSystem tafloc(scenario_.deployment());
  tafloc.calibrate(x0_, ambient0_, 0.0);
  tafloc.update_with_collector(scenario_.collector(), kEvalDay, rng_);

  const FingerprintDatabase stale_db(x0_, ambient0_, 0.0);
  const RassLocalizer rass_without(scenario_.deployment(), stale_db, ambient_now_,
                                   RassConfig{}, "RASS w/o rec.");
  const RassLocalizer rass_with(scenario_.deployment(), tafloc.database(), ambient_now_,
                                RassConfig{}, "RASS w/ rec.");

  EXPECT_LT(mean_error(rass_with), mean_error(rass_without));
}

TEST_F(PipelineTest, Fig5TafLocBeatsRti) {
  TafLocSystem tafloc(scenario_.deployment());
  tafloc.calibrate(x0_, ambient0_, 0.0);
  tafloc.update_with_collector(scenario_.collector(), kEvalDay, rng_);

  const RtiLocalizer rti(scenario_.deployment(), ambient_now_);
  EXPECT_LT(mean_error(tafloc), mean_error(rti));
}

TEST_F(PipelineTest, ReconstructionErrorBeatsStalenessAtThreeMonths) {
  TafLocSystem tafloc(scenario_.deployment());
  tafloc.calibrate(x0_, ambient0_, 0.0);
  tafloc.update_with_collector(scenario_.collector(), kEvalDay, rng_);

  const Matrix truth = scenario_.collector().ground_truth(kEvalDay);
  const double recon_err = mean_abs_error(tafloc.database().fingerprints(), truth);
  const double stale_err = mean_abs_error(x0_, truth);
  EXPECT_LT(recon_err, stale_err);
  EXPECT_LT(recon_err, 5.0);  // paper: 4.1 dBm at 3 months
}

TEST_F(PipelineTest, UpdateCostIsTenTimesCheaperThanFullSurvey) {
  TafLocSystem tafloc(scenario_.deployment());
  tafloc.calibrate(x0_, ambient0_, 0.0);
  const SurveyCostModel cost;
  const double full = cost.hours_for_grids(scenario_.deployment().num_grids());
  const double taf = cost.reference_survey_hours(tafloc.reference_locations().size());
  EXPECT_LT(taf, full / 5.0);
}

TEST_F(PipelineTest, RepeatedUpdatesKeepAccuracyStable) {
  TafLocSystem tafloc(scenario_.deployment());
  tafloc.calibrate(x0_, ambient0_, 0.0);
  for (double t : {15.0, 45.0, 90.0}) {
    tafloc.update_with_collector(scenario_.collector(), t, rng_);
  }
  EXPECT_LT(mean_error(tafloc), 2.2);
}

TEST_F(PipelineTest, MovingTargetTracking) {
  // Track a waypoint walk with EMA smoothing; mean error stays bounded.
  TafLocSystem tafloc(scenario_.deployment());
  tafloc.calibrate(x0_, ambient0_, 0.0);
  tafloc.update_with_collector(scenario_.collector(), kEvalDay, rng_);

  const auto walk = waypoint_walk(scenario_.deployment().grid(), 40, 0.8, 1.0, rng_);
  double total = 0.0;
  for (const Point2& p : walk) {
    const Vector y = scenario_.collector().observe(p, kEvalDay, rng_);
    total += distance(tafloc.localize(y), p);
  }
  EXPECT_LT(total / static_cast<double>(walk.size()), 2.2);
}

}  // namespace
}  // namespace tafloc
