#include "tafloc/linalg/ops.h"

#include <gtest/gtest.h>

#include <cmath>

#include "tafloc/linalg/svd.h"
#include "tafloc/util/rng.h"

namespace tafloc {
namespace {

TEST(SoftThreshold, ShrinksTowardZero) {
  EXPECT_DOUBLE_EQ(soft_threshold(5.0, 2.0), 3.0);
  EXPECT_DOUBLE_EQ(soft_threshold(-5.0, 2.0), -3.0);
  EXPECT_DOUBLE_EQ(soft_threshold(1.0, 2.0), 0.0);
  EXPECT_DOUBLE_EQ(soft_threshold(-1.0, 2.0), 0.0);
  EXPECT_DOUBLE_EQ(soft_threshold(0.0, 2.0), 0.0);
}

TEST(SoftThreshold, ZeroTauIsIdentity) {
  EXPECT_DOUBLE_EQ(soft_threshold(3.5, 0.0), 3.5);
  EXPECT_DOUBLE_EQ(soft_threshold(-3.5, 0.0), -3.5);
}

TEST(SingularValueShrink, ShrinksSigmaByTau) {
  const std::vector<double> d{5.0, 3.0, 1.0};
  const Matrix a = Matrix::diagonal(d);
  const Matrix shrunk = singular_value_shrink(a, 2.0);
  const SvdResult svd = svd_decompose(shrunk);
  EXPECT_NEAR(svd.sigma[0], 3.0, 1e-9);
  EXPECT_NEAR(svd.sigma[1], 1.0, 1e-9);
  EXPECT_NEAR(svd.sigma[2], 0.0, 1e-9);
}

TEST(SingularValueShrink, LargeTauGivesZeroMatrix) {
  Rng rng(1);
  const Matrix a = random_gaussian(4, 4, rng);
  const Matrix z = singular_value_shrink(a, 1e6);
  EXPECT_LT(z.max_abs(), 1e-9);
}

TEST(SingularValueShrink, ReducesRank) {
  Rng rng(2);
  const Matrix a = random_low_rank(8, 8, 4, rng);
  const SvdResult before = svd_decompose(a);
  const Matrix shrunk = singular_value_shrink(a, before.sigma[2] + 1e-6);
  EXPECT_LE(numeric_rank(shrunk, 1e-6), 2u);
}

TEST(SingularValueShrink, RejectsNegativeTau) {
  const Matrix a(2, 2, 1.0);
  EXPECT_THROW(singular_value_shrink(a, -1.0), std::invalid_argument);
}

TEST(FirstDifference, KnownShapeAndAction) {
  const Matrix d = first_difference_operator(4);
  EXPECT_EQ(d.rows(), 3u);
  EXPECT_EQ(d.cols(), 4u);
  const std::vector<double> x{1.0, 3.0, 6.0, 10.0};
  const Vector dx = multiply(d, x);
  EXPECT_DOUBLE_EQ(dx[0], 2.0);
  EXPECT_DOUBLE_EQ(dx[1], 3.0);
  EXPECT_DOUBLE_EQ(dx[2], 4.0);
}

TEST(FirstDifference, AnnihilatesConstants) {
  const Matrix d = first_difference_operator(5);
  const std::vector<double> x(5, 7.0);
  const Vector dx = multiply(d, x);
  for (double v : dx) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(FirstDifference, RejectsTooSmall) {
  EXPECT_THROW(first_difference_operator(1), std::invalid_argument);
}

TEST(SecondDifference, AnnihilatesAffineSequences) {
  const Matrix d = second_difference_operator(5);
  const std::vector<double> x{1.0, 3.0, 5.0, 7.0, 9.0};  // affine
  const Vector dx = multiply(d, x);
  for (double v : dx) EXPECT_NEAR(v, 0.0, 1e-12);
}

TEST(SecondDifference, RejectsTooSmall) {
  EXPECT_THROW(second_difference_operator(2), std::invalid_argument);
}

TEST(NumericRank, MatchesConstruction) {
  Rng rng(3);
  EXPECT_EQ(numeric_rank(random_low_rank(9, 7, 3, rng), 1e-8), 3u);
}

TEST(RandomGaussian, ShapeAndMoments) {
  Rng rng(4);
  const Matrix m = random_gaussian(40, 40, rng);
  EXPECT_EQ(m.rows(), 40u);
  double sum = 0.0, sum_sq = 0.0;
  for (double v : m.data()) {
    sum += v;
    sum_sq += v * v;
  }
  const double n = static_cast<double>(m.size());
  EXPECT_NEAR(sum / n, 0.0, 0.1);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.1);
}

TEST(RandomLowRank, HasRequestedRank) {
  Rng rng(5);
  const Matrix m = random_low_rank(12, 10, 4, rng);
  EXPECT_EQ(numeric_rank(m, 1e-8), 4u);
}

TEST(RandomLowRank, RejectsBadRank) {
  Rng rng(6);
  EXPECT_THROW(random_low_rank(4, 4, 0, rng), std::invalid_argument);
  EXPECT_THROW(random_low_rank(4, 4, 5, rng), std::invalid_argument);
}

TEST(RandomOrthonormal, ColumnsOrthonormal) {
  Rng rng(7);
  const Matrix q = random_orthonormal(9, 4, rng);
  EXPECT_LT(max_abs_diff(gram_product(q, q), Matrix::identity(4)), 1e-10);
}

TEST(RandomOrthonormal, RejectsWide) {
  Rng rng(8);
  EXPECT_THROW(random_orthonormal(3, 5, rng), std::invalid_argument);
}

}  // namespace
}  // namespace tafloc
