#include "tafloc/tafloc/system.h"

#include <gtest/gtest.h>

#include "tafloc/recon/error.h"
#include "tafloc/sim/scenario.h"

namespace tafloc {
namespace {

class TafLocSystemTest : public ::testing::Test {
 protected:
  TafLocSystemTest() : scenario_(Scenario::paper_room(51)), rng_(51) {}

  /// Calibrate a system at t = 0 from a fresh full survey.
  TafLocSystem calibrated_system(const TafLocConfig& cfg = {}) {
    TafLocSystem system(scenario_.deployment(), cfg);
    const Matrix x0 = scenario_.collector().survey_all(0.0, rng_);
    Vector ambient = scenario_.collector().ambient_scan(0.0, rng_);
    system.calibrate(x0, std::move(ambient), 0.0);
    return system;
  }

  Scenario scenario_;
  Rng rng_;
};

TEST_F(TafLocSystemTest, UncalibratedOperationsThrow) {
  TafLocSystem system(scenario_.deployment());
  EXPECT_FALSE(system.calibrated());
  const std::vector<double> y(10, -40.0);
  EXPECT_THROW(system.localize(y), std::logic_error);
  EXPECT_THROW(system.reference_locations(), std::logic_error);
  EXPECT_THROW(system.database(), std::logic_error);
  EXPECT_THROW(system.lrr(), std::logic_error);
  EXPECT_THROW(system.update(Matrix(10, 5, 0.0), Vector(10, 0.0), 1.0), std::logic_error);
}

TEST_F(TafLocSystemTest, CalibrationPopulatesState) {
  const TafLocSystem system = calibrated_system();
  EXPECT_TRUE(system.calibrated());
  EXPECT_FALSE(system.reference_locations().empty());
  EXPECT_LE(system.reference_locations().size(), 12u);  // n << N = 96
  EXPECT_EQ(system.database().num_links(), 10u);
  EXPECT_EQ(system.database().num_grids(), 96u);
  EXPECT_GT(system.distortion_mask().num_distorted(), 0u);
}

TEST_F(TafLocSystemTest, CalibrationValidatesShapes) {
  TafLocSystem system(scenario_.deployment());
  EXPECT_THROW(system.calibrate(Matrix(5, 96, 0.0), Vector(5, 0.0), 0.0),
               std::invalid_argument);
  EXPECT_THROW(system.calibrate(Matrix(10, 90, 0.0), Vector(10, 0.0), 0.0),
               std::invalid_argument);
}

TEST_F(TafLocSystemTest, ExplicitReferenceCountRespected) {
  TafLocConfig cfg;
  cfg.reference_count = 7;
  const TafLocSystem system = calibrated_system(cfg);
  EXPECT_EQ(system.reference_locations().size(), 7u);
}

TEST_F(TafLocSystemTest, LocalizesFreshlyCalibrated) {
  const TafLocSystem system = calibrated_system();
  double total = 0.0;
  for (std::size_t j : {11u, 44u, 77u}) {
    const Point2 target = scenario_.deployment().grid().center(j);
    const Vector y = scenario_.collector().observe(target, 0.0, rng_);
    total += distance(system.localize(y), target);
  }
  EXPECT_LT(total / 3.0, 1.5);
}

TEST_F(TafLocSystemTest, UpdateReconstructsDatabase) {
  TafLocSystem system = calibrated_system();
  const double t = 45.0;
  const auto report = system.update_with_collector(scenario_.collector(), t, rng_);
  EXPECT_EQ(report.references_surveyed, system.reference_locations().size());
  EXPECT_DOUBLE_EQ(report.updated_at_days, t);
  EXPECT_DOUBLE_EQ(system.database().surveyed_at_days(), t);

  const Matrix truth = scenario_.collector().ground_truth(t);
  const double err = mean_abs_error(system.database().fingerprints(), truth);
  EXPECT_LT(err, 5.0);  // paper band: ~3.6 dBm at 45 days
}

TEST_F(TafLocSystemTest, UpdateBeatsStaleDatabaseForLocalization) {
  TafLocSystem updated = calibrated_system();
  TafLocSystem stale = calibrated_system();
  const double t = 90.0;
  updated.update_with_collector(scenario_.collector(), t, rng_);

  double err_updated = 0.0, err_stale = 0.0;
  for (std::size_t j = 3; j < 96; j += 9) {
    const Point2 target = scenario_.deployment().grid().center(j);
    const Vector y = scenario_.collector().observe(target, t, rng_);
    err_updated += distance(updated.localize(y), target);
    err_stale += distance(stale.localize(y), target);
  }
  EXPECT_LT(err_updated, err_stale);
}

TEST_F(TafLocSystemTest, UpdateValidatesInputs) {
  TafLocSystem system = calibrated_system();
  const std::size_t n = system.reference_locations().size();
  EXPECT_THROW(system.update(Matrix(10, n + 1, 0.0), Vector(10, 0.0), 1.0),
               std::invalid_argument);
  EXPECT_THROW(system.update(Matrix(9, n, 0.0), Vector(10, 0.0), 1.0), std::invalid_argument);
  EXPECT_THROW(system.update(Matrix(10, n, 0.0), Vector(9, 0.0), 1.0), std::invalid_argument);
}

TEST_F(TafLocSystemTest, SolverReportIsPlausible) {
  TafLocSystem system = calibrated_system();
  const auto report = system.update_with_collector(scenario_.collector(), 15.0, rng_);
  EXPECT_GT(report.solver.outer_iterations, 0u);
  EXPECT_FALSE(report.solver.objective_trace.empty());
  EXPECT_GT(report.solver.rank, 0u);
}

TEST_F(TafLocSystemTest, NameIsTafLoc) {
  const TafLocSystem system = calibrated_system();
  EXPECT_EQ(system.name(), "TafLoc");
}

TEST_F(TafLocSystemTest, RejectsBadConfig) {
  TafLocConfig cfg;
  cfg.knn_k = 0;
  EXPECT_THROW(TafLocSystem(scenario_.deployment(), cfg), std::invalid_argument);
}

TEST_F(TafLocSystemTest, StateExportImportRoundTrip) {
  TafLocSystem original = calibrated_system();
  original.update_with_collector(scenario_.collector(), 30.0, rng_);
  const TafLocState state = original.export_state();

  // Restore into a FRESH system with no calibration of its own.
  TafLocSystem restored(scenario_.deployment());
  restored.import_state(state);
  EXPECT_TRUE(restored.calibrated());
  EXPECT_EQ(restored.reference_locations(), original.reference_locations());
  EXPECT_DOUBLE_EQ(restored.database().surveyed_at_days(), 30.0);

  // Identical localization behaviour.
  for (std::size_t j : {5u, 50u, 95u}) {
    const Vector y = scenario_.collector().observe(scenario_.deployment().grid().center(j),
                                                   30.0, rng_);
    const Point2 a = original.localize(y);
    const Point2 b = restored.localize(y);
    EXPECT_LT(distance(a, b), 1e-12);
  }
}

TEST_F(TafLocSystemTest, StateSerializationRoundTrip) {
  TafLocSystem original = calibrated_system();
  const TafLocState state = original.export_state();
  std::stringstream ss;
  state.save(ss);
  const TafLocState loaded = TafLocState::load(ss);
  EXPECT_EQ(loaded.fingerprints, state.fingerprints);
  EXPECT_EQ(loaded.ambient, state.ambient);
  EXPECT_EQ(loaded.correlation, state.correlation);
  EXPECT_EQ(loaded.reference_indices, state.reference_indices);
  EXPECT_EQ(loaded.mask_undistorted, state.mask_undistorted);
  EXPECT_DOUBLE_EQ(loaded.surveyed_at_days, state.surveyed_at_days);
}

TEST_F(TafLocSystemTest, StateFileRoundTripAndUpdateAfterImport) {
  TafLocSystem original = calibrated_system();
  const std::string path = std::string(::testing::TempDir()) + "tafloc_state_test.txt";
  original.export_state().save_file(path);

  TafLocSystem restored(scenario_.deployment());
  restored.import_state(TafLocState::load_file(path));
  std::remove(path.c_str());

  // The restored system must be able to run the low-cost update cycle.
  const auto report = restored.update_with_collector(scenario_.collector(), 45.0, rng_);
  EXPECT_GT(report.solver.outer_iterations, 0u);
  EXPECT_DOUBLE_EQ(restored.database().surveyed_at_days(), 45.0);
}

TEST_F(TafLocSystemTest, StateLoadRejectsMalformedInput) {
  std::stringstream empty;
  EXPECT_THROW(TafLocState::load(empty), std::runtime_error);
  std::stringstream bad_header("not-a-state 1 2 3");
  EXPECT_THROW(TafLocState::load(bad_header), std::runtime_error);
}

TEST_F(TafLocSystemTest, ImportStateValidatesShapes) {
  TafLocSystem original = calibrated_system();
  TafLocState state = original.export_state();
  state.ambient.pop_back();
  TafLocSystem fresh(scenario_.deployment());
  EXPECT_THROW(fresh.import_state(state), std::invalid_argument);
}

TEST_F(TafLocSystemTest, ExportStateRequiresCalibration) {
  TafLocSystem fresh(scenario_.deployment());
  EXPECT_THROW(fresh.export_state(), std::logic_error);
}

TEST_F(TafLocSystemTest, SuccessiveUpdatesAdvanceTime) {
  TafLocSystem system = calibrated_system();
  system.update_with_collector(scenario_.collector(), 15.0, rng_);
  system.update_with_collector(scenario_.collector(), 45.0, rng_);
  EXPECT_DOUBLE_EQ(system.database().surveyed_at_days(), 45.0);
}

TEST_F(TafLocSystemTest, QuantizedScanIsBitIdenticalToFloatScan) {
  // quantized_scan defaults on; a system with it disabled must produce
  // the SAME bits for every estimate -- the tier is a pure accelerator.
  // Both systems calibrate from ONE survey so any divergence is the
  // scan path's fault, not sampling noise.
  const Matrix x0 = scenario_.collector().survey_all(0.0, rng_);
  const Vector ambient = scenario_.collector().ambient_scan(0.0, rng_);
  TafLocSystem quantized(scenario_.deployment());
  quantized.calibrate(x0, Vector(ambient), 0.0);
  TafLocConfig cfg;
  cfg.quantized_scan = false;
  TafLocSystem plain(scenario_.deployment(), cfg);
  plain.calibrate(x0, Vector(ambient), 0.0);
  EXPECT_TRUE(quantized.quantized_tier_active());
  EXPECT_FALSE(plain.quantized_tier_active());

  Rng probe_rng(909);
  auto compare_everywhere = [&](double t) {
    for (std::size_t j : {0u, 11u, 44u, 77u, 95u}) {
      const Point2 target = scenario_.deployment().grid().center(j);
      const Vector y = scenario_.collector().observe(target, t, probe_rng);
      const Point2 a = quantized.localize(y);
      const Point2 b = plain.localize(y);
      EXPECT_EQ(a.x, b.x) << "t=" << t << " j=" << j;
      EXPECT_EQ(a.y, b.y) << "t=" << t << " j=" << j;
    }
  };
  compare_everywhere(0.0);

  // Tier survives an update (database rebuild) with identity intact.
  Rng upd_rng(910);
  quantized.update_with_collector(scenario_.collector(), 45.0, upd_rng);
  Rng upd_rng2(910);
  plain.update_with_collector(scenario_.collector(), 45.0, upd_rng2);
  EXPECT_TRUE(quantized.quantized_tier_active());
  compare_everywhere(45.0);
}

}  // namespace
}  // namespace tafloc
