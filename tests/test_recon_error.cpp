#include "tafloc/recon/error.h"

#include <gtest/gtest.h>

#include <cmath>

namespace tafloc {
namespace {

TEST(ReconError, EntrywiseAbsErrors) {
  const Matrix a = Matrix::from_rows({{1.0, 2.0}, {3.0, 4.0}});
  const Matrix b = Matrix::from_rows({{1.5, 2.0}, {2.0, 6.0}});
  const auto errs = entrywise_abs_errors(a, b);
  ASSERT_EQ(errs.size(), 4u);
  EXPECT_DOUBLE_EQ(errs[0], 0.5);
  EXPECT_DOUBLE_EQ(errs[1], 0.0);
  EXPECT_DOUBLE_EQ(errs[2], 1.0);
  EXPECT_DOUBLE_EQ(errs[3], 2.0);
}

TEST(ReconError, MeanAbsError) {
  const Matrix a = Matrix::from_rows({{0.0, 0.0}});
  const Matrix b = Matrix::from_rows({{3.0, 1.0}});
  EXPECT_DOUBLE_EQ(mean_abs_error(a, b), 2.0);
}

TEST(ReconError, RmsError) {
  const Matrix a = Matrix::from_rows({{0.0, 0.0}});
  const Matrix b = Matrix::from_rows({{3.0, 4.0}});
  EXPECT_NEAR(rms_error(a, b), std::sqrt(12.5), 1e-12);
}

TEST(ReconError, IdenticalMatricesZeroError) {
  const Matrix a(3, 4, 2.5);
  EXPECT_DOUBLE_EQ(mean_abs_error(a, a), 0.0);
  EXPECT_DOUBLE_EQ(rms_error(a, a), 0.0);
}

TEST(ReconError, DistortedSubsetOnly) {
  const Matrix a = Matrix::from_rows({{1.0, 2.0}, {3.0, 4.0}});
  const Matrix b = Matrix::from_rows({{2.0, 2.0}, {3.0, 9.0}});
  DistortionMask mask{Matrix::from_rows({{0.0, 1.0}, {1.0, 0.0}}),
                      Matrix::from_rows({{1.0, 0.0}, {0.0, 1.0}})};
  const auto errs = entrywise_abs_errors_distorted(a, b, mask);
  ASSERT_EQ(errs.size(), 2u);
  EXPECT_DOUBLE_EQ(errs[0], 1.0);  // entry (0,0)
  EXPECT_DOUBLE_EQ(errs[1], 5.0);  // entry (1,1)
}

TEST(ReconError, RejectsShapeMismatch) {
  const Matrix a(2, 2, 0.0);
  const Matrix b(2, 3, 0.0);
  EXPECT_THROW(entrywise_abs_errors(a, b), std::invalid_argument);
  DistortionMask mask{Matrix(3, 3, 1.0), Matrix(3, 3, 0.0)};
  EXPECT_THROW(entrywise_abs_errors_distorted(a, a, mask), std::invalid_argument);
}

TEST(ReconError, RmsAtLeastMean) {
  const Matrix a = Matrix::from_rows({{0.0, 0.0, 0.0}});
  const Matrix b = Matrix::from_rows({{1.0, 5.0, 2.0}});
  EXPECT_GE(rms_error(a, b), mean_abs_error(a, b));
}

}  // namespace
}  // namespace tafloc
