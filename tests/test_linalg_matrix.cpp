#include "tafloc/linalg/matrix.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace tafloc {
namespace {

TEST(Matrix, DefaultIsEmpty) {
  Matrix m;
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
  EXPECT_TRUE(m.empty());
}

TEST(Matrix, FillConstructor) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.size(), 6u);
  for (std::size_t r = 0; r < 2; ++r)
    for (std::size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(m(r, c), 1.5);
}

TEST(Matrix, RejectsHalfEmptyShape) {
  EXPECT_THROW(Matrix(0, 3), std::invalid_argument);
  EXPECT_THROW(Matrix(3, 0), std::invalid_argument);
}

TEST(Matrix, FromRows) {
  const Matrix m = Matrix::from_rows({{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}});
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(2, 0), 5.0);
}

TEST(Matrix, FromRowsRejectsRagged) {
  EXPECT_THROW(Matrix::from_rows({{1.0, 2.0}, {3.0}}), std::invalid_argument);
}

TEST(Matrix, Identity) {
  const Matrix id = Matrix::identity(3);
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(id(r, c), r == c ? 1.0 : 0.0);
}

TEST(Matrix, Diagonal) {
  const std::vector<double> d{1.0, 2.0, 3.0};
  const Matrix m = Matrix::diagonal(d);
  EXPECT_DOUBLE_EQ(m(1, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(0, 2), 0.0);
}

TEST(Matrix, ColumnFactory) {
  const std::vector<double> v{1.0, 2.0};
  const Matrix m = Matrix::column(v);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 1u);
  EXPECT_DOUBLE_EQ(m(1, 0), 2.0);
}

TEST(Matrix, AtChecksBounds) {
  Matrix m(2, 2);
  EXPECT_THROW(m.at(2, 0), std::out_of_range);
  EXPECT_THROW(m.at(0, 2), std::out_of_range);
  m.at(1, 1) = 5.0;
  EXPECT_DOUBLE_EQ(m.at(1, 1), 5.0);
}

TEST(Matrix, RowAndColCopies) {
  const Matrix m = Matrix::from_rows({{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}});
  const Vector r = m.row(1);
  ASSERT_EQ(r.size(), 3u);
  EXPECT_DOUBLE_EQ(r[0], 4.0);
  const Vector c = m.col(2);
  ASSERT_EQ(c.size(), 2u);
  EXPECT_DOUBLE_EQ(c[1], 6.0);
}

TEST(Matrix, SetRowAndCol) {
  Matrix m(2, 2);
  const std::vector<double> row{1.0, 2.0};
  const std::vector<double> col{3.0, 4.0};
  m.set_row(0, row);
  m.set_col(1, col);
  EXPECT_DOUBLE_EQ(m(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m(0, 1), 3.0);  // set_col overwrote the row value
  EXPECT_DOUBLE_EQ(m(1, 1), 4.0);
}

TEST(Matrix, SetRowRejectsWrongLength) {
  Matrix m(2, 2);
  const std::vector<double> bad{1.0};
  EXPECT_THROW(m.set_row(0, bad), std::invalid_argument);
  EXPECT_THROW(m.set_col(0, bad), std::invalid_argument);
}

TEST(Matrix, Transposed) {
  const Matrix m = Matrix::from_rows({{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}});
  const Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  for (std::size_t r = 0; r < 2; ++r)
    for (std::size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(t(c, r), m(r, c));
}

TEST(Matrix, TransposeTwiceIsIdentity) {
  const Matrix m = Matrix::from_rows({{1.0, -2.0}, {0.5, 7.0}});
  EXPECT_EQ(m.transposed().transposed(), m);
}

TEST(Matrix, Submatrix) {
  const Matrix m = Matrix::from_rows({{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}, {7.0, 8.0, 9.0}});
  const Matrix s = m.submatrix(1, 1, 2, 2);
  EXPECT_EQ(s, Matrix::from_rows({{5.0, 6.0}, {8.0, 9.0}}));
}

TEST(Matrix, SubmatrixRejectsOutOfBounds) {
  const Matrix m(2, 2);
  EXPECT_THROW(m.submatrix(1, 1, 2, 1), std::invalid_argument);
  EXPECT_THROW(m.submatrix(0, 0, 0, 1), std::invalid_argument);
}

TEST(Matrix, SelectColumns) {
  const Matrix m = Matrix::from_rows({{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}});
  const std::vector<std::size_t> idx{2, 0, 2};
  const Matrix s = m.select_columns(idx);
  EXPECT_EQ(s, Matrix::from_rows({{3.0, 1.0, 3.0}, {6.0, 4.0, 6.0}}));
}

TEST(Matrix, SelectRows) {
  const Matrix m = Matrix::from_rows({{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}});
  const std::vector<std::size_t> idx{2, 0};
  const Matrix s = m.select_rows(idx);
  EXPECT_EQ(s, Matrix::from_rows({{5.0, 6.0}, {1.0, 2.0}}));
}

TEST(Matrix, SelectRejectsBadIndex) {
  const Matrix m(2, 2);
  const std::vector<std::size_t> bad{5};
  EXPECT_THROW(m.select_columns(bad), std::out_of_range);
  EXPECT_THROW(m.select_rows(bad), std::out_of_range);
}

TEST(Matrix, AdditionSubtraction) {
  const Matrix a = Matrix::from_rows({{1.0, 2.0}, {3.0, 4.0}});
  const Matrix b = Matrix::from_rows({{10.0, 20.0}, {30.0, 40.0}});
  EXPECT_EQ(a + b, Matrix::from_rows({{11.0, 22.0}, {33.0, 44.0}}));
  EXPECT_EQ(b - a, Matrix::from_rows({{9.0, 18.0}, {27.0, 36.0}}));
}

TEST(Matrix, ArithmeticRejectsShapeMismatch) {
  Matrix a(2, 2);
  const Matrix b(2, 3);
  EXPECT_THROW(a += b, std::invalid_argument);
  EXPECT_THROW(a -= b, std::invalid_argument);
  EXPECT_THROW(a.hadamard(b), std::invalid_argument);
  EXPECT_THROW(a.frobenius_dot(b), std::invalid_argument);
}

TEST(Matrix, ScalarScaling) {
  const Matrix a = Matrix::from_rows({{1.0, -2.0}});
  EXPECT_EQ(a * 2.0, Matrix::from_rows({{2.0, -4.0}}));
  EXPECT_EQ(-1.0 * a, Matrix::from_rows({{-1.0, 2.0}}));
}

TEST(Matrix, Hadamard) {
  const Matrix a = Matrix::from_rows({{1.0, 2.0}, {3.0, 4.0}});
  const Matrix b = Matrix::from_rows({{2.0, 0.0}, {1.0, -1.0}});
  EXPECT_EQ(a.hadamard(b), Matrix::from_rows({{2.0, 0.0}, {3.0, -4.0}}));
}

TEST(Matrix, FrobeniusNormAndDot) {
  const Matrix a = Matrix::from_rows({{3.0, 4.0}});
  EXPECT_DOUBLE_EQ(a.frobenius_norm(), 5.0);
  const Matrix b = Matrix::from_rows({{1.0, 1.0}});
  EXPECT_DOUBLE_EQ(a.frobenius_dot(b), 7.0);
}

TEST(Matrix, MaxAbsAndSum) {
  const Matrix a = Matrix::from_rows({{-5.0, 2.0}, {1.0, 3.0}});
  EXPECT_DOUBLE_EQ(a.max_abs(), 5.0);
  EXPECT_DOUBLE_EQ(a.sum(), 1.0);
}

TEST(Matrix, MatrixProduct) {
  const Matrix a = Matrix::from_rows({{1.0, 2.0}, {3.0, 4.0}});
  const Matrix b = Matrix::from_rows({{5.0, 6.0}, {7.0, 8.0}});
  EXPECT_EQ(a * b, Matrix::from_rows({{19.0, 22.0}, {43.0, 50.0}}));
}

TEST(Matrix, ProductWithIdentityIsNoop) {
  const Matrix a = Matrix::from_rows({{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}});
  EXPECT_EQ(a * Matrix::identity(3), a);
  EXPECT_EQ(Matrix::identity(2) * a, a);
}

TEST(Matrix, ProductRejectsMismatch) {
  const Matrix a(2, 3);
  const Matrix b(2, 3);
  EXPECT_THROW(a * b, std::invalid_argument);
}

TEST(Matrix, MatrixVectorProduct) {
  const Matrix a = Matrix::from_rows({{1.0, 2.0}, {3.0, 4.0}});
  const std::vector<double> x{1.0, -1.0};
  const Vector y = multiply(a, x);
  ASSERT_EQ(y.size(), 2u);
  EXPECT_DOUBLE_EQ(y[0], -1.0);
  EXPECT_DOUBLE_EQ(y[1], -1.0);
}

TEST(Matrix, TransposedMatrixVectorProduct) {
  const Matrix a = Matrix::from_rows({{1.0, 2.0}, {3.0, 4.0}});
  const std::vector<double> x{1.0, 1.0};
  const Vector y = multiply_transposed(a, x);
  ASSERT_EQ(y.size(), 2u);
  EXPECT_DOUBLE_EQ(y[0], 4.0);
  EXPECT_DOUBLE_EQ(y[1], 6.0);
}

TEST(Matrix, GramProductMatchesExplicit) {
  const Matrix a = Matrix::from_rows({{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}});
  const Matrix b = Matrix::from_rows({{1.0, 0.0, 2.0}, {0.0, 1.0, 1.0}, {1.0, 1.0, 0.0}});
  const Matrix expected = a.transposed() * b;
  const Matrix got = gram_product(a, b);
  EXPECT_LT(max_abs_diff(expected, got), 1e-12);
}

TEST(Matrix, OuterProductMatchesExplicit) {
  const Matrix a = Matrix::from_rows({{1.0, 2.0}, {3.0, 4.0}});
  const Matrix b = Matrix::from_rows({{5.0, 6.0}, {7.0, 8.0}, {9.0, 1.0}});
  const Matrix expected = a * b.transposed();
  EXPECT_LT(max_abs_diff(expected, outer_product(a, b)), 1e-12);
}

TEST(Matrix, MaxAbsDiff) {
  const Matrix a = Matrix::from_rows({{1.0, 2.0}});
  const Matrix b = Matrix::from_rows({{1.5, -1.0}});
  EXPECT_DOUBLE_EQ(max_abs_diff(a, b), 3.0);
}

TEST(Matrix, ToStringContainsShape) {
  const Matrix m(2, 3);
  EXPECT_NE(m.to_string().find("2x3"), std::string::npos);
}

TEST(Matrix, ResizePreservesPrefixAndZeroesTail) {
  // Pins the documented semantics: elements are reinterpreted in
  // flattened row-major order, the surviving prefix keeps its values
  // and any tail beyond the old size is zero.
  Matrix m = Matrix::from_rows({{1.0, 2.0}, {3.0, 4.0}});
  m.resize(3, 2);
  EXPECT_DOUBLE_EQ(m(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
  EXPECT_DOUBLE_EQ(m(1, 1), 4.0);
  EXPECT_DOUBLE_EQ(m(2, 0), 0.0);
  EXPECT_DOUBLE_EQ(m(2, 1), 0.0);
}

TEST(Matrix, ResizeWithinCapacityDoesNotReallocate) {
  // The property Workspace leasing and view stability rely on: shrink
  // then regrow within capacity must leave the storage in place.
  Matrix m(6, 8, 1.0);
  const std::size_t cap = m.capacity();
  const double* p = m.data().data();
  m.resize(2, 3);
  EXPECT_EQ(m.data().data(), p);
  m.resize(6, 8);
  EXPECT_EQ(m.data().data(), p);
  EXPECT_EQ(m.capacity(), cap);
  // Views taken before an in-capacity resize still point at live storage.
  ConstMatrixView v = m.view();
  m.resize(3, 4);
  EXPECT_EQ(v.data(), m.data().data());
}

#ifndef NDEBUG
// Debug-build aliasing assertions: the _into kernels verify that the
// destination does not overlap an input and throw std::invalid_argument
// when it does.  (Release builds trust the caller; these tests run in
// the CI debug job.)
TEST(MatrixAliasingDeathTest, MultiplyIntoRejectsOverlappingDestination) {
  Matrix a(4, 4, 1.0);
  Matrix b(4, 4, 2.0);
  EXPECT_THROW(multiply_into(a.view(), b.view(), a.view()), std::invalid_argument);
  EXPECT_THROW(multiply_into(a.view(), b.view(), b.view()), std::invalid_argument);
  // The check is conservative over storage envelopes: two blocks with
  // disjoint elements but interleaved rows still count as overlapping.
  Matrix big(8, 8, 1.0);
  EXPECT_THROW(
      multiply_into(big.block_view(0, 0, 4, 4), b.view(), big.block_view(2, 4, 4, 4)),
      std::invalid_argument);
}

TEST(MatrixAliasingDeathTest, GramOuterTransposeRejectOverlap) {
  Matrix a(4, 4, 1.0);
  EXPECT_THROW(gram_product_into(a.view(), a.view(), a.view()), std::invalid_argument);
  EXPECT_THROW(outer_product_into(a.view(), a.view(), a.view()), std::invalid_argument);
  EXPECT_THROW(transposed_into(a.view(), a.view()), std::invalid_argument);
}

TEST(MatrixAliasingDeathTest, GatherColumnsRejectsOverlap) {
  Matrix a(3, 4, 1.0);
  const std::vector<std::size_t> idx = {0, 2};
  EXPECT_THROW(gather_columns_into(a.view(), idx, a.block_view(0, 0, 3, 2)),
               std::invalid_argument);
}
#endif  // !NDEBUG

}  // namespace
}  // namespace tafloc
