#include "tafloc/fingerprint/link_health.h"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

namespace tafloc {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

std::vector<double> reading(double a, double b, double c) { return {a, b, c}; }

TEST(LinkHealth, StartsAllHealthy) {
  const LinkHealth h(4);
  EXPECT_EQ(h.num_links(), 4u);
  EXPECT_TRUE(h.all_healthy());
  EXPECT_TRUE(h.all_usable());
  EXPECT_EQ(h.usable_count(), 4u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(h.state(i), LinkState::Healthy);
  EXPECT_EQ(h.usable_bytes().size(), 4u);
}

TEST(LinkHealth, NonFiniteReadingKillsLinkImmediately) {
  LinkHealth h(3);
  const auto report = h.observe(reading(-40.0, kNan, -42.0));
  EXPECT_EQ(report.newly_dead, 1u);
  EXPECT_EQ(h.state(1), LinkState::Dead);
  EXPECT_FALSE(h.usable(1));
  EXPECT_EQ(h.dead_count(), 1u);
  EXPECT_EQ(h.usable_bytes()[1], 0);
  EXPECT_EQ(h.dead_links(), std::vector<std::size_t>{1});
}

TEST(LinkHealth, StuckLinkDegradesToSuspectThenDead) {
  LinkHealthConfig cfg;
  cfg.stuck_after = 3;
  cfg.stuck_dead_after = 6;
  LinkHealth h(2, cfg);
  // Link 0 varies; link 1 repeats the exact same value.
  double wobble = -40.0;
  for (int i = 0; i < 4; ++i) {
    wobble += 0.1;
    h.observe(std::vector<double>{wobble, -55.0});
  }
  EXPECT_EQ(h.state(0), LinkState::Healthy);
  EXPECT_EQ(h.state(1), LinkState::Suspect);
  EXPECT_TRUE(h.usable(1));  // Suspect still serves
  EXPECT_EQ(h.suspect_count(), 1u);
  for (int i = 0; i < 3; ++i) {
    wobble += 0.1;
    h.observe(std::vector<double>{wobble, -55.0});
  }
  EXPECT_EQ(h.state(1), LinkState::Dead);
  EXPECT_FALSE(h.usable(1));
}

TEST(LinkHealth, AutoFlaggedLinkRevivesOnGoodReadings) {
  LinkHealthConfig cfg;
  cfg.revive_after = 2;
  LinkHealth h(1, cfg);
  h.observe(std::vector<double>{kNan});
  EXPECT_EQ(h.state(0), LinkState::Dead);
  // Two distinct finite readings heal it.
  h.observe(std::vector<double>{-41.0});
  EXPECT_EQ(h.state(0), LinkState::Dead);  // streak 1 of 2
  const auto report = h.observe(std::vector<double>{-41.5});
  EXPECT_EQ(report.revived, 1u);
  EXPECT_EQ(h.state(0), LinkState::Healthy);
}

TEST(LinkHealth, PinnedLinksNeverAutoRecover) {
  LinkHealthConfig cfg;
  cfg.revive_after = 1;
  LinkHealth h(2, cfg);
  h.mark_dead(0);
  h.mark_suspect(1);
  EXPECT_EQ(h.state(0), LinkState::Dead);
  EXPECT_EQ(h.state(1), LinkState::Suspect);
  for (int i = 0; i < 10; ++i) h.observe(std::vector<double>{-40.0 - i, -50.0 - i});
  EXPECT_EQ(h.state(0), LinkState::Dead);
  EXPECT_EQ(h.state(1), LinkState::Suspect);
  // revive() clears the pin.
  h.revive(0);
  EXPECT_EQ(h.state(0), LinkState::Healthy);
  EXPECT_TRUE(h.usable(0));
}

// -- persistence: a restored state machine must take the IDENTICAL
//    subsequent transitions (the durability layer's recovery depends
//    on it). --

LinkHealth round_trip(const LinkHealth& health) {
  storage::ByteWriter w;
  health.save(w);
  storage::ByteReader r(w.bytes());
  LinkHealth back = LinkHealth::load(r);
  EXPECT_TRUE(r.exhausted());
  return back;
}

TEST(LinkHealthPersistence, RoundTripsEveryStateIncludingPins) {
  LinkHealthConfig cfg;
  cfg.stuck_after = 2;
  cfg.stuck_dead_after = 4;
  cfg.revive_after = 2;
  LinkHealth health(6, cfg);
  // Build a state zoo: auto-dead (NaN), auto-suspect (stuck), pinned
  // dead, pinned suspect, mid-revive streak, untouched healthy.
  health.observe(std::vector<double>{kNan, -40.0, -41.0, -42.0, -43.0, -44.0});
  health.observe(std::vector<double>{kNan, -40.0, -41.0, -42.0, -43.0, -44.5});
  health.observe(std::vector<double>{kNan, -40.0, -41.0, -42.0, -43.0, -44.0});
  ASSERT_EQ(health.state(1), LinkState::Suspect);  // 3 exact repeats > stuck_after.
  health.mark_dead(2);
  health.mark_suspect(3);
  ASSERT_EQ(health.state(0), LinkState::Dead);

  const LinkHealth back = round_trip(health);
  EXPECT_TRUE(back == health);
  EXPECT_EQ(back.num_links(), 6u);
  EXPECT_EQ(back.state(0), LinkState::Dead);
  EXPECT_EQ(back.state(1), LinkState::Suspect);
  EXPECT_EQ(back.state(2), LinkState::Dead);
  EXPECT_EQ(back.state(3), LinkState::Suspect);
  EXPECT_EQ(back.state(5), LinkState::Healthy);
  EXPECT_EQ(back.dead_count(), health.dead_count());
  EXPECT_EQ(back.suspect_count(), health.suspect_count());
}

TEST(LinkHealthPersistence, RestoredInstanceTakesIdenticalTransitions) {
  LinkHealthConfig cfg;
  cfg.stuck_after = 3;
  cfg.stuck_dead_after = 5;
  cfg.revive_after = 2;
  LinkHealth live(3, cfg);
  // Leave link 0 one repeat short of Suspect and link 1 mid-revive, so
  // the streak counters (not just the states) decide what comes next.
  live.observe(reading(-50.0, kNan, -52.0));
  live.observe(reading(-50.0, -51.0, -52.5));
  LinkHealth restored = round_trip(live);

  const std::vector<double> next[] = {
      reading(-50.0, -51.0, -52.0),  // link 0 hits stuck_after; link 1 heals further.
      reading(-50.0, -51.5, -52.0),
      reading(-50.0, -51.5, -52.0),
  };
  for (const auto& rss : next) {
    const auto a = live.observe(rss);
    const auto b = restored.observe(rss);
    EXPECT_EQ(a.newly_dead, b.newly_dead);
    EXPECT_EQ(a.newly_suspect, b.newly_suspect);
    EXPECT_EQ(a.revived, b.revived);
    EXPECT_TRUE(restored == live);
  }
}

TEST(LinkHealthPersistence, PinnedLinksStayPinnedAcrossRestore) {
  LinkHealth live(3);
  live.mark_dead(0);
  live.mark_suspect(1);
  LinkHealth restored = round_trip(live);
  // Good readings must not heal pinned links -- before or after restore.
  for (int i = 0; i < 10; ++i)
    restored.observe(reading(-40.0 - i, -41.0 - i, -42.0 - i));
  EXPECT_EQ(restored.state(0), LinkState::Dead);
  EXPECT_EQ(restored.state(1), LinkState::Suspect);
  restored.revive(0);
  EXPECT_EQ(restored.state(0), LinkState::Healthy);
}

TEST(LinkHealthPersistence, MalformedPayloadsRejected) {
  LinkHealth health(4);
  storage::ByteWriter w;
  health.save(w);
  const std::string bytes = w.take();
  // Truncation at any 8-byte boundary throws, never crashes.
  for (std::size_t keep = 0; keep < bytes.size(); keep += 8) {
    storage::ByteReader r(std::string_view(bytes).substr(0, keep));
    EXPECT_THROW(LinkHealth::load(r), std::runtime_error) << "keep=" << keep;
  }
  // An unknown state byte is data corruption, not a state.
  std::string bad = bytes;
  bad[3 * 8 + 8] = '\x7e';  // first state byte (after 3 config u64s + span length).
  storage::ByteReader r(bad);
  EXPECT_THROW(LinkHealth::load(r), std::runtime_error);
}

TEST(LinkHealth, RejectsBadArguments) {
  LinkHealth h(2);
  EXPECT_THROW(h.observe(std::vector<double>{1.0}), std::invalid_argument);
  EXPECT_THROW(h.mark_dead(2), std::out_of_range);
  EXPECT_THROW(h.state(5), std::out_of_range);
}

}  // namespace
}  // namespace tafloc
