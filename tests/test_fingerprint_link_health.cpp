#include "tafloc/fingerprint/link_health.h"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

namespace tafloc {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

std::vector<double> reading(double a, double b, double c) { return {a, b, c}; }

TEST(LinkHealth, StartsAllHealthy) {
  const LinkHealth h(4);
  EXPECT_EQ(h.num_links(), 4u);
  EXPECT_TRUE(h.all_healthy());
  EXPECT_TRUE(h.all_usable());
  EXPECT_EQ(h.usable_count(), 4u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(h.state(i), LinkState::Healthy);
  EXPECT_EQ(h.usable_bytes().size(), 4u);
}

TEST(LinkHealth, NonFiniteReadingKillsLinkImmediately) {
  LinkHealth h(3);
  const auto report = h.observe(reading(-40.0, kNan, -42.0));
  EXPECT_EQ(report.newly_dead, 1u);
  EXPECT_EQ(h.state(1), LinkState::Dead);
  EXPECT_FALSE(h.usable(1));
  EXPECT_EQ(h.dead_count(), 1u);
  EXPECT_EQ(h.usable_bytes()[1], 0);
  EXPECT_EQ(h.dead_links(), std::vector<std::size_t>{1});
}

TEST(LinkHealth, StuckLinkDegradesToSuspectThenDead) {
  LinkHealthConfig cfg;
  cfg.stuck_after = 3;
  cfg.stuck_dead_after = 6;
  LinkHealth h(2, cfg);
  // Link 0 varies; link 1 repeats the exact same value.
  double wobble = -40.0;
  for (int i = 0; i < 4; ++i) {
    wobble += 0.1;
    h.observe(std::vector<double>{wobble, -55.0});
  }
  EXPECT_EQ(h.state(0), LinkState::Healthy);
  EXPECT_EQ(h.state(1), LinkState::Suspect);
  EXPECT_TRUE(h.usable(1));  // Suspect still serves
  EXPECT_EQ(h.suspect_count(), 1u);
  for (int i = 0; i < 3; ++i) {
    wobble += 0.1;
    h.observe(std::vector<double>{wobble, -55.0});
  }
  EXPECT_EQ(h.state(1), LinkState::Dead);
  EXPECT_FALSE(h.usable(1));
}

TEST(LinkHealth, AutoFlaggedLinkRevivesOnGoodReadings) {
  LinkHealthConfig cfg;
  cfg.revive_after = 2;
  LinkHealth h(1, cfg);
  h.observe(std::vector<double>{kNan});
  EXPECT_EQ(h.state(0), LinkState::Dead);
  // Two distinct finite readings heal it.
  h.observe(std::vector<double>{-41.0});
  EXPECT_EQ(h.state(0), LinkState::Dead);  // streak 1 of 2
  const auto report = h.observe(std::vector<double>{-41.5});
  EXPECT_EQ(report.revived, 1u);
  EXPECT_EQ(h.state(0), LinkState::Healthy);
}

TEST(LinkHealth, PinnedLinksNeverAutoRecover) {
  LinkHealthConfig cfg;
  cfg.revive_after = 1;
  LinkHealth h(2, cfg);
  h.mark_dead(0);
  h.mark_suspect(1);
  EXPECT_EQ(h.state(0), LinkState::Dead);
  EXPECT_EQ(h.state(1), LinkState::Suspect);
  for (int i = 0; i < 10; ++i) h.observe(std::vector<double>{-40.0 - i, -50.0 - i});
  EXPECT_EQ(h.state(0), LinkState::Dead);
  EXPECT_EQ(h.state(1), LinkState::Suspect);
  // revive() clears the pin.
  h.revive(0);
  EXPECT_EQ(h.state(0), LinkState::Healthy);
  EXPECT_TRUE(h.usable(0));
}

TEST(LinkHealth, RejectsBadArguments) {
  LinkHealth h(2);
  EXPECT_THROW(h.observe(std::vector<double>{1.0}), std::invalid_argument);
  EXPECT_THROW(h.mark_dead(2), std::out_of_range);
  EXPECT_THROW(h.state(5), std::out_of_range);
}

}  // namespace
}  // namespace tafloc
