#include "tafloc/recon/svt.h"

#include <gtest/gtest.h>

#include "tafloc/linalg/ops.h"
#include "tafloc/linalg/svd.h"
#include "tafloc/util/rng.h"

namespace tafloc {
namespace {

/// Random 0/1 mask with the given observed fraction.
Matrix random_mask(std::size_t rows, std::size_t cols, double fraction, Rng& rng) {
  Matrix mask(rows, cols);
  for (double& v : mask.data()) v = rng.bernoulli(fraction) ? 1.0 : 0.0;
  return mask;
}

/// A completion instance: rank-2 truth + Bernoulli mask.
struct Instance {
  Matrix truth;
  Matrix mask;
  Instance(std::size_t n, double fraction, std::uint64_t seed) {
    Rng rng(seed);
    truth = random_low_rank(n, n, 2, rng) * 10.0;
    mask = random_mask(n, n, fraction, rng);
  }
};

SvtOptions tight_options() {
  SvtOptions o;
  o.tolerance = 1e-5;
  o.max_iterations = 10000;
  return o;
}

TEST(Svt, CompletesLowRankMatrix) {
  // 24x24 rank-2 at 85% sampling: comfortably above the exact-recovery
  // threshold (smaller/sparser instances can have feasible completions
  // with smaller nuclear norm than the truth -- see
  // NeverExceedsTruthNuclearNorm, which tests that exact property).
  const Instance inst(24, 0.85, 3);
  const SvtResult res = svt_complete(inst.truth.hadamard(inst.mask), inst.mask, tight_options());
  EXPECT_TRUE(res.converged);
  EXPECT_LT((res.x - inst.truth).frobenius_norm() / inst.truth.frobenius_norm(), 0.05);
}

TEST(Svt, ObservedEntriesFitTightly) {
  const Instance inst(20, 0.8, 4);
  const SvtResult res = svt_complete(inst.truth.hadamard(inst.mask), inst.mask, tight_options());
  EXPECT_TRUE(res.converged);
  EXPECT_LE(res.residual, 1e-5);
}

TEST(Svt, ResultHasLowRank) {
  const Instance inst(24, 0.85, 5);
  const SvtResult res = svt_complete(inst.truth.hadamard(inst.mask), inst.mask, tight_options());
  EXPECT_LE(numeric_rank(res.x, 1e-3), 4u);
}

TEST(Svt, NeverExceedsTruthNuclearNorm) {
  // The solver minimizes the (tau-regularized) nuclear norm over the
  // feasible set, and the truth is feasible: whatever the instance, the
  // solution's nuclear norm must not exceed the truth's (within the
  // constraint tolerance).  This holds even on instances where exact
  // recovery fails.
  for (std::uint64_t seed : {1u, 2u, 3u, 7u}) {
    const Instance inst(16, 0.7, seed);
    const SvtResult res =
        svt_complete(inst.truth.hadamard(inst.mask), inst.mask, tight_options());
    const double got = svd_decompose(res.x).nuclear_norm();
    const double truth_norm = svd_decompose(inst.truth).nuclear_norm();
    EXPECT_LE(got, truth_norm * 1.01) << "seed " << seed;
  }
}

TEST(Svt, FullObservationReproducesInput) {
  Rng rng(4);
  const Matrix truth = random_low_rank(10, 10, 3, rng) * 8.0;
  const Matrix mask(10, 10, 1.0);
  const SvtResult res = svt_complete(truth, mask, tight_options());
  EXPECT_TRUE(res.converged);
  EXPECT_LT((res.x - truth).frobenius_norm() / truth.frobenius_norm(), 1e-3);
}

TEST(Svt, ReportsNonConvergenceHonestly) {
  const Instance inst(10, 0.3, 5);
  SvtOptions opts;
  opts.max_iterations = 2;
  opts.tolerance = 1e-12;
  const SvtResult res = svt_complete(inst.truth.hadamard(inst.mask), inst.mask, opts);
  EXPECT_FALSE(res.converged);
  EXPECT_EQ(res.iterations, 2u);
  EXPECT_GT(res.residual, 0.0);
}

TEST(Svt, RejectsBadMaskValues) {
  const Matrix x(3, 3, 1.0);
  Matrix mask(3, 3, 1.0);
  mask(0, 0) = 0.5;
  EXPECT_THROW(svt_complete(x, mask), std::invalid_argument);
}

TEST(Svt, RejectsEmptyObservationSet) {
  const Matrix x(3, 3, 1.0);
  const Matrix mask(3, 3, 0.0);
  EXPECT_THROW(svt_complete(x, mask), std::invalid_argument);
}

TEST(Svt, RejectsAllZeroObservations) {
  const Matrix x(3, 3, 0.0);
  const Matrix mask(3, 3, 1.0);
  EXPECT_THROW(svt_complete(x, mask), std::invalid_argument);
}

TEST(Svt, RejectsShapeMismatch) {
  const Matrix x(3, 3, 1.0);
  const Matrix mask(3, 4, 1.0);
  EXPECT_THROW(svt_complete(x, mask), std::invalid_argument);
}

TEST(Svt, RejectsBadOptions) {
  const Matrix x(3, 3, 1.0);
  const Matrix mask(3, 3, 1.0);
  SvtOptions opts;
  opts.tolerance = 0.0;
  EXPECT_THROW(svt_complete(x, mask, opts), std::invalid_argument);
  opts = SvtOptions{};
  opts.max_iterations = 0;
  EXPECT_THROW(svt_complete(x, mask, opts), std::invalid_argument);
}

// Sweep: recovery quality across observation fractions (24x24 keeps all
// fractions above the exact-recovery threshold).
class SvtFractionSweep : public ::testing::TestWithParam<double> {};

TEST_P(SvtFractionSweep, RecoversWithEnoughSamples) {
  const double fraction = GetParam();
  const Instance inst(24, fraction, 42);
  const SvtResult res = svt_complete(inst.truth.hadamard(inst.mask), inst.mask, tight_options());
  const double rel = (res.x - inst.truth).frobenius_norm() / inst.truth.frobenius_norm();
  EXPECT_LT(rel, 0.1) << "fraction " << fraction;
}

INSTANTIATE_TEST_SUITE_P(Fractions, SvtFractionSweep, ::testing::Values(0.7, 0.85, 1.0));

}  // namespace
}  // namespace tafloc
