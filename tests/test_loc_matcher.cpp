#include "tafloc/loc/matcher.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "tafloc/sim/scenario.h"
#include "tafloc/sim/trace.h"

namespace tafloc {
namespace {

/// A toy 1x3 fingerprint setup on a 3-cell strip: RSS values -30/-40/-50.
struct Toy {
  GridMap grid{1.8, 0.6, 0.6};
  Matrix fp = Matrix::from_rows({{-30.0, -40.0, -50.0}});
};

TEST(NnMatcher, PicksClosestColumn) {
  Toy toy;
  const NnMatcher nn(toy.fp, toy.grid);
  const std::vector<double> y{-41.0};
  EXPECT_EQ(nn.nearest_grid(y), 1u);
  const Point2 est = nn.localize(y);
  EXPECT_DOUBLE_EQ(est.x, 0.9);
  EXPECT_DOUBLE_EQ(est.y, 0.3);
}

TEST(NnMatcher, ExactMatch) {
  Toy toy;
  const NnMatcher nn(toy.fp, toy.grid);
  const std::vector<double> y{-50.0};
  EXPECT_EQ(nn.nearest_grid(y), 2u);
}

TEST(NnMatcher, RejectsWrongObservationLength) {
  Toy toy;
  const NnMatcher nn(toy.fp, toy.grid);
  const std::vector<double> y{-40.0, -40.0};
  EXPECT_THROW(nn.localize(y), std::invalid_argument);
}

TEST(NnMatcher, RejectsMismatchedShapes) {
  const GridMap grid(1.8, 0.6, 0.6);
  const Matrix fp(1, 2, 0.0);  // 2 cols for 3 cells
  EXPECT_THROW(NnMatcher(fp, grid), std::invalid_argument);
}

TEST(KnnMatcher, K1MatchesNn) {
  Toy toy;
  const NnMatcher nn(toy.fp, toy.grid);
  const KnnMatcher knn(toy.fp, toy.grid, 1);
  const std::vector<double> y{-44.0};
  const Point2 a = nn.localize(y);
  const Point2 b = knn.localize(y);
  EXPECT_DOUBLE_EQ(a.x, b.x);
  EXPECT_DOUBLE_EQ(a.y, b.y);
}

TEST(KnnMatcher, InterpolatesBetweenGrids) {
  Toy toy;
  const KnnMatcher knn(toy.fp, toy.grid, 2, /*weighted=*/true);
  // Observation exactly between columns 0 and 1: estimate must fall
  // between the two grid centres.
  const std::vector<double> y{-35.0};
  const Point2 est = knn.localize(y);
  EXPECT_GT(est.x, 0.3);
  EXPECT_LT(est.x, 0.9);
}

TEST(KnnMatcher, WeightedPullsTowardCloserFingerprint) {
  Toy toy;
  const KnnMatcher knn(toy.fp, toy.grid, 2, /*weighted=*/true);
  const std::vector<double> y{-31.0};  // much closer to column 0
  const Point2 est = knn.localize(y);
  EXPECT_LT(est.x, 0.6);  // nearer the first grid centre at 0.3
}

TEST(KnnMatcher, UnweightedIsPlainCentroid) {
  Toy toy;
  const KnnMatcher knn(toy.fp, toy.grid, 2, /*weighted=*/false);
  const std::vector<double> y{-31.0};
  const Point2 est = knn.localize(y);
  EXPECT_NEAR(est.x, (0.3 + 0.9) / 2.0, 1e-12);
}

TEST(KnnMatcher, NearestGridsOrdered) {
  Toy toy;
  const KnnMatcher knn(toy.fp, toy.grid, 3);
  const std::vector<double> y{-49.0};
  const auto order = knn.nearest_grids(y);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 2u);
  EXPECT_EQ(order[1], 1u);
  EXPECT_EQ(order[2], 0u);
}

TEST(KnnMatcher, TightGateDropsFarNeighboursAndReportsThem) {
  // A strip long enough that the non-anchor neighbours sit beyond a
  // tight spatial gate: the centroid must collapse to the anchor
  // deliberately (guarded wsum), and the drop count must be visible.
  const GridMap grid(3.0, 0.6, 0.6);  // 5 cells, centres 0.6 m apart
  const Matrix fp = Matrix::from_rows({{-30.0, -60.0, -31.0, -60.0, -32.0}});
  const KnnMatcher knn(fp, grid, 3, /*weighted=*/true, /*spatial_gate_m=*/0.5);
  const std::vector<double> y{-30.4};  // neighbours: cells 0, 2, 4
  MatchStats stats;
  const Point2 est = knn.localize(y, &stats);
  EXPECT_EQ(stats.gated_out, 2u);  // cells 2 and 4 are >= 1.2 m from cell 0
  EXPECT_FALSE(stats.centroid_fallback);  // anchor weight keeps wsum > 0
  EXPECT_DOUBLE_EQ(est.x, grid.center(0).x);
  EXPECT_DOUBLE_EQ(est.y, grid.center(0).y);
  EXPECT_TRUE(std::isfinite(est.x) && std::isfinite(est.y));
}

TEST(KnnMatcher, HugeObservationFallsBackToAnchorNotNan) {
  // Finite-but-huge RSS overflows the squared distance to +inf, every
  // inverse-distance weight underflows to 0, and the old code returned
  // NaN/NaN.  The guarded path must return the anchor instead.
  Toy toy;
  const KnnMatcher knn(toy.fp, toy.grid, 2, /*weighted=*/true, /*spatial_gate_m=*/0.0);
  const std::vector<double> y{1e200};
  MatchStats stats;
  const Point2 est = knn.localize(y, &stats);
  EXPECT_TRUE(stats.centroid_fallback);
  EXPECT_TRUE(std::isfinite(est.x) && std::isfinite(est.y));
  EXPECT_DOUBLE_EQ(est.x, toy.grid.center(knn.nearest_grids(y).front()).x);
}

TEST(KnnMatcher, StatsReportLinksUsedUnderMask) {
  const GridMap grid(1.8, 0.6, 0.6);
  const Matrix fp =
      Matrix::from_rows({{-30.0, -40.0, -50.0}, {-35.0, -45.0, -55.0}, {-20.0, -25.0, -30.0}});
  LinkHealth health(3);
  health.mark_dead(2);
  KnnMatcher knn(fp, grid, 2);
  knn.attach_link_health(&health);
  const std::vector<double> y{-41.0, -46.0, std::numeric_limits<double>::quiet_NaN()};
  MatchStats stats;
  (void)knn.localize(y, &stats);
  EXPECT_EQ(stats.links_used, 2u);
}

TEST(KnnMatcher, RejectsBadK) {
  Toy toy;
  EXPECT_THROW(KnnMatcher(toy.fp, toy.grid, 0), std::invalid_argument);
  EXPECT_THROW(KnnMatcher(toy.fp, toy.grid, 4), std::invalid_argument);
}

TEST(KnnMatcher, NameEncodesVariant) {
  Toy toy;
  EXPECT_EQ(KnnMatcher(toy.fp, toy.grid, 3, true).name(), "WKNN-k3");
  EXPECT_EQ(KnnMatcher(toy.fp, toy.grid, 2, false).name(), "KNN-k2");
}

TEST(BayesMatcher, PosteriorSumsToOne) {
  Toy toy;
  const BayesMatcher bayes(toy.fp, toy.grid, 2.0);
  const std::vector<double> y{-42.0};
  const Vector post = bayes.posterior(y);
  double sum = 0.0;
  for (double p : post) {
    EXPECT_GE(p, 0.0);
    sum += p;
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(BayesMatcher, PosteriorPeaksAtBestMatch) {
  Toy toy;
  const BayesMatcher bayes(toy.fp, toy.grid, 2.0);
  const std::vector<double> y{-40.2};
  const Vector post = bayes.posterior(y);
  EXPECT_GT(post[1], post[0]);
  EXPECT_GT(post[1], post[2]);
}

TEST(BayesMatcher, SmallSigmaApproachesNn) {
  Toy toy;
  const BayesMatcher bayes(toy.fp, toy.grid, 0.1);
  const std::vector<double> y{-40.0};
  const Point2 est = bayes.localize(y);
  EXPECT_NEAR(est.x, 0.9, 1e-6);
}

TEST(BayesMatcher, RejectsBadSigma) {
  Toy toy;
  EXPECT_THROW(BayesMatcher(toy.fp, toy.grid, 0.0), std::invalid_argument);
}

TEST(Matchers, LocalizeFreshFingerprintsAccurately) {
  // End-to-end sanity on the simulated paper room with a fresh DB: all
  // three matchers localize a grid-centre target to well under a metre.
  const Scenario s = Scenario::paper_room(20);
  Rng rng(20);
  const Matrix fp = s.collector().survey_all(0.0, rng);
  const GridMap& grid = s.deployment().grid();
  const NnMatcher nn(fp, grid);
  const KnnMatcher knn(fp, grid, 3);
  const BayesMatcher bayes(fp, grid, 2.0);

  for (std::size_t j : {7u, 40u, 88u}) {
    const Point2 truth = grid.center(j);
    const Vector y = s.collector().observe(truth, 0.0, rng);
    EXPECT_LT(distance(nn.localize(y), truth), 1.5);
    EXPECT_LT(distance(knn.localize(y), truth), 1.5);
    EXPECT_LT(distance(bayes.localize(y), truth), 1.8);
  }
}

TEST(Matchers, BorrowingCtorMatchesOwningCtor) {
  // A matcher built over a borrowed view of the fingerprints must
  // behave exactly like one that copied them (toy.fp outlives both).
  Toy toy;
  const NnMatcher nn_own(toy.fp, toy.grid);
  const NnMatcher nn_borrow(toy.fp.view(), toy.grid);
  const KnnMatcher knn_own(toy.fp, toy.grid, 2);
  const KnnMatcher knn_borrow(toy.fp.view(), toy.grid, 2);
  const std::vector<double> y{-37.0};
  EXPECT_EQ(nn_borrow.nearest_grid(y), nn_own.nearest_grid(y));
  const Point2 a = knn_own.localize(y);
  const Point2 b = knn_borrow.localize(y);
  EXPECT_DOUBLE_EQ(a.x, b.x);
  EXPECT_DOUBLE_EQ(a.y, b.y);
  // Copying a borrowing matcher keeps borrowing; copying an owning one
  // re-points the view at the copied storage.
  const KnnMatcher copy = knn_own;
  const Point2 c = copy.localize(y);
  EXPECT_DOUBLE_EQ(c.x, a.x);
  EXPECT_DOUBLE_EQ(c.y, a.y);
}

TEST(Matchers, KnnIsFineGrained) {
  // For an off-centre target, weighted KNN should usually beat plain NN
  // (which is quantized to grid centres).  Check on aggregate error.
  const Scenario s = Scenario::paper_room(21);
  Rng rng(21);
  const Matrix fp = s.collector().survey_all(0.0, rng);
  const GridMap& grid = s.deployment().grid();
  const NnMatcher nn(fp, grid);
  const KnnMatcher knn(fp, grid, 3);

  double nn_total = 0.0, knn_total = 0.0;
  const auto targets = random_positions(grid, 40, rng);
  for (const Point2& truth : targets) {
    const Vector y = s.collector().observe(truth, 0.0, rng);
    nn_total += distance(nn.localize(y), truth);
    knn_total += distance(knn.localize(y), truth);
  }
  EXPECT_LT(knn_total, nn_total * 1.05);
}

}  // namespace
}  // namespace tafloc
