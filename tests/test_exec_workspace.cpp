#include "tafloc/exec/workspace.h"

#include <gtest/gtest.h>

namespace tafloc {
namespace {

TEST(Workspace, LeaseIsZeroFilledAndCorrectShape) {
  Workspace ws;
  auto m = ws.matrix(3, 4);
  EXPECT_EQ(m->rows(), 3u);
  EXPECT_EQ(m->cols(), 4u);
  for (double v : m->data()) EXPECT_EQ(v, 0.0);
  auto v = ws.vector(7);
  EXPECT_EQ(v->size(), 7u);
  for (double x : *v) EXPECT_EQ(x, 0.0);
}

TEST(Workspace, ReleasedBufferIsReusedWithoutAllocation) {
  Workspace ws;
  {
    auto m = ws.matrix(8, 8);
    (*m)(0, 0) = 42.0;
  }
  EXPECT_EQ(ws.allocations(), 1u);
  EXPECT_EQ(ws.outstanding(), 0u);
  {
    auto m = ws.matrix(8, 8);  // same size: must reuse the pooled buffer
    EXPECT_EQ((*m)(0, 0), 0.0) << "re-leased buffer must be zero-filled";
  }
  EXPECT_EQ(ws.allocations(), 1u) << "re-lease of a fitting buffer must not allocate";
  EXPECT_EQ(ws.pooled_buffers(), 1u);
}

TEST(Workspace, SmallerLeaseFitsInsideLargerFreeBuffer) {
  Workspace ws;
  { auto m = ws.matrix(10, 10); }
  EXPECT_EQ(ws.allocations(), 1u);
  { auto m = ws.matrix(4, 5); }  // 20 doubles fit in the 100-double buffer
  EXPECT_EQ(ws.allocations(), 1u);
}

TEST(Workspace, SteadyStateLoopAllocatesOnlyOnWarmup) {
  Workspace ws;
  std::size_t after_warmup = 0;
  for (int it = 0; it < 10; ++it) {
    auto a = ws.matrix(16, 16);
    auto b = ws.matrix(16, 4);
    auto c = ws.vector(64);
    (*a)(0, 0) = static_cast<double>(it);
    if (it == 0) after_warmup = ws.allocations();
  }
  EXPECT_EQ(ws.allocations(), after_warmup)
      << "iterations after the first must be allocation-free";
  EXPECT_EQ(ws.outstanding(), 0u);
}

TEST(Workspace, ConcurrentLeasesGetDistinctBuffers) {
  Workspace ws;
  auto a = ws.matrix(4, 4);
  auto b = ws.matrix(4, 4);
  EXPECT_NE(&*a, &*b);
  EXPECT_EQ(ws.outstanding(), 2u);
  (*a)(1, 1) = 5.0;
  EXPECT_EQ((*b)(1, 1), 0.0);
}

TEST(Workspace, LeaseAddressesSurvivePoolGrowth) {
  Workspace ws;
  auto a = ws.matrix(2, 2);
  Matrix* pa = &*a;
  std::vector<Workspace::MatrixLease> extra;
  for (int i = 0; i < 50; ++i) extra.push_back(ws.matrix(2, 2));
  (*a)(0, 1) = 9.0;
  EXPECT_EQ(pa, &*a);
  EXPECT_EQ((*pa)(0, 1), 9.0);
}

}  // namespace
}  // namespace tafloc
