// JobQueue: the asynchronous, supervised job runner under the daemon's
// per-zone update jobs.  FIFO order on one worker, exception
// containment, idle tracking, shutdown semantics.
#include "tafloc/exec/job_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

namespace tafloc {
namespace {

TEST(JobQueue, RunsJobsInSubmissionOrderOnOneWorker) {
  JobQueue queue("test");
  std::vector<int> ran;
  std::mutex mu;
  for (int i = 0; i < 32; ++i) {
    queue.submit([&, i] {
      const std::lock_guard<std::mutex> lock(mu);
      ran.push_back(i);
    });
  }
  queue.wait_idle();
  ASSERT_EQ(ran.size(), 32u);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(ran[static_cast<std::size_t>(i)], i);
  EXPECT_EQ(queue.submitted(), 32u);
  EXPECT_EQ(queue.completed(), 32u);
  EXPECT_EQ(queue.failed(), 0u);
  EXPECT_TRUE(queue.idle());
}

TEST(JobQueue, SubmitReturnsMonotonicIds) {
  JobQueue queue("test");
  EXPECT_EQ(queue.submit([] {}), 1u);
  EXPECT_EQ(queue.submit([] {}), 2u);
  EXPECT_EQ(queue.submit([] {}), 3u);
  queue.wait_idle();
}

TEST(JobQueue, ThrowingJobIsContainedAndCounted) {
  JobQueue queue("test");
  std::atomic<bool> after{false};
  queue.submit([] { throw std::runtime_error("boom"); });
  queue.submit([&] { after = true; });
  queue.wait_idle();
  EXPECT_TRUE(after.load());  // the worker survived the throw.
  EXPECT_EQ(queue.failed(), 1u);
  EXPECT_EQ(queue.completed(), 1u);
}

TEST(JobQueue, WaitIdleBlocksUntilRunningJobFinishes) {
  JobQueue queue("test");
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<bool> done{false};
  queue.submit([&] {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
    done = true;
  });
  // Give the worker time to dequeue; pending() then reports 0 while the
  // job is still running, and idle() must stay false.
  while (queue.pending() != 0) std::this_thread::yield();
  EXPECT_FALSE(queue.idle());
  {
    const std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_one();
  queue.wait_idle();
  EXPECT_TRUE(done.load());
  EXPECT_TRUE(queue.idle());
}

TEST(JobQueue, ShutdownDrainsQueuedJobsThenRejectsSubmissions) {
  JobQueue queue("test");
  std::atomic<int> ran{0};
  for (int i = 0; i < 8; ++i) queue.submit([&] { ++ran; });
  queue.shutdown();
  EXPECT_EQ(ran.load(), 8);
  EXPECT_THROW(queue.submit([] {}), std::runtime_error);
  queue.shutdown();  // idempotent.
}

TEST(JobQueue, NullJobRejected) {
  JobQueue queue("test");
  EXPECT_THROW(queue.submit(std::function<void()>{}), std::invalid_argument);
}

TEST(JobQueue, ManyWorkersCompleteEverything) {
  JobQueue queue("test", 4);
  EXPECT_EQ(queue.workers(), 4u);
  std::atomic<int> ran{0};
  for (int i = 0; i < 200; ++i) queue.submit([&] { ++ran; });
  queue.wait_idle();
  EXPECT_EQ(ran.load(), 200);
  EXPECT_EQ(queue.completed(), 200u);
}

}  // namespace
}  // namespace tafloc
