#include "tafloc/tafloc/scheduler.h"

#include <gtest/gtest.h>

#include <limits>
#include <string_view>

#include "tafloc/sim/scenario.h"
#include "tafloc/storage/codec.h"
#include "tafloc/telemetry/metrics.h"
#include "tafloc/tafloc/system.h"

namespace tafloc {
namespace {

TEST(UpdateScheduler, NoTriggerBelowThreshold) {
  UpdateScheduler sched(Vector{-30.0, -40.0}, 0.0);
  const std::vector<double> ambient{-30.5, -40.5};  // 0.5 dB drift
  EXPECT_FALSE(sched.observe_ambient(ambient, 10.0));
  EXPECT_NEAR(sched.estimated_staleness_db(), 0.5, 1e-12);
}

TEST(UpdateScheduler, TriggersAboveThreshold) {
  SchedulerConfig cfg;
  cfg.staleness_threshold_db = 3.0;
  UpdateScheduler sched(Vector{-30.0, -40.0}, 0.0, cfg);
  const std::vector<double> drifted{-34.0, -44.0};  // 4 dB drift
  EXPECT_TRUE(sched.observe_ambient(drifted, 10.0));
}

TEST(UpdateScheduler, MinIntervalSuppressesEarlyTrigger) {
  SchedulerConfig cfg;
  cfg.min_interval_days = 5.0;
  UpdateScheduler sched(Vector{-30.0}, 0.0, cfg);
  const std::vector<double> drifted{-40.0};  // way above threshold
  EXPECT_FALSE(sched.observe_ambient(drifted, 2.0));  // too soon
  EXPECT_TRUE(sched.observe_ambient(drifted, 6.0));
}

TEST(UpdateScheduler, MaxIntervalForcesUpdate) {
  SchedulerConfig cfg;
  cfg.staleness_threshold_db = 100.0;  // never triggered by drift
  cfg.max_interval_days = 30.0;
  UpdateScheduler sched(Vector{-30.0}, 0.0, cfg);
  const std::vector<double> quiet{-30.0};
  EXPECT_FALSE(sched.observe_ambient(quiet, 29.0));
  EXPECT_TRUE(sched.observe_ambient(quiet, 30.0));
}

TEST(UpdateScheduler, NotifyUpdatedResetsBaselineAndClock) {
  SchedulerConfig cfg;
  cfg.staleness_threshold_db = 3.0;
  UpdateScheduler sched(Vector{-30.0}, 0.0, cfg);
  const std::vector<double> drifted{-35.0};
  EXPECT_TRUE(sched.observe_ambient(drifted, 10.0));

  sched.notify_updated(Vector{-35.0}, 10.0);
  EXPECT_DOUBLE_EQ(sched.last_update_days(), 10.0);
  EXPECT_DOUBLE_EQ(sched.estimated_staleness_db(), 0.0);
  // Same ambient is now the baseline: no trigger.
  EXPECT_FALSE(sched.observe_ambient(drifted, 20.0));
}

TEST(UpdateScheduler, RejectsBadArguments) {
  EXPECT_THROW(UpdateScheduler(Vector{}, 0.0), std::invalid_argument);
  SchedulerConfig cfg;
  cfg.staleness_threshold_db = 0.0;
  EXPECT_THROW(UpdateScheduler(Vector{1.0}, 0.0, cfg), std::invalid_argument);
  cfg = SchedulerConfig{};
  cfg.max_interval_days = cfg.min_interval_days;
  EXPECT_THROW(UpdateScheduler(Vector{1.0}, 0.0, cfg), std::invalid_argument);

  UpdateScheduler sched(Vector{1.0}, 5.0);
  const std::vector<double> wrong{1.0, 2.0};
  EXPECT_THROW(sched.observe_ambient(wrong, 6.0), std::invalid_argument);
}

TEST(UpdateScheduler, DropsOutOfOrderAndUnusableSamples) {
  SchedulerConfig cfg;
  cfg.staleness_threshold_db = 3.0;
  UpdateScheduler sched(Vector{-30.0, -30.0}, 5.0, cfg);
  const std::vector<double> drifted{-35.0, -35.0};
  EXPECT_TRUE(sched.observe_ambient(drifted, 15.0));
  const double staleness = sched.estimated_staleness_db();

  // A late sample must not kill the process, advance the clock, or
  // disturb the staleness estimate -- just be counted and dropped.
  const std::vector<double> stale{-90.0, -90.0};
  EXPECT_FALSE(sched.observe_ambient(stale, 4.0));
  EXPECT_EQ(sched.dropped_observations(), 1u);
  EXPECT_DOUBLE_EQ(sched.estimated_staleness_db(), staleness);
  EXPECT_TRUE(sched.observe_ambient(drifted, 15.0));  // clock did not move back

  // A scan with no finite entry carries no information: dropped too.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const std::vector<double> all_bad{nan, nan};
  EXPECT_FALSE(sched.observe_ambient(all_bad, 16.0));
  EXPECT_EQ(sched.dropped_observations(), 2u);

  // A partially-NaN scan averages over the finite links only: one link
  // at 6 dB drift (NaN on the other) reads 6 dB, not 3.
  const std::vector<double> half_bad{-36.0, nan};
  EXPECT_TRUE(sched.observe_ambient(half_bad, 17.0));
  EXPECT_DOUBLE_EQ(sched.estimated_staleness_db(), 6.0);
}

TEST(UpdateScheduler, SplitDropCountersDistinguishReasons) {
  UpdateScheduler sched(Vector{-30.0, -30.0}, 5.0);
  sched.observe_ambient(std::vector<double>{-31.0, -31.0}, 10.0);
  // Two clock problems, one dead-radio scan.
  sched.observe_ambient(std::vector<double>{-32.0, -32.0}, 7.0);
  sched.observe_ambient(std::vector<double>{-32.0, -32.0}, 8.0);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  sched.observe_ambient(std::vector<double>{nan, nan}, 11.0);
  EXPECT_EQ(sched.dropped_out_of_order(), 2u);
  EXPECT_EQ(sched.dropped_nan(), 1u);
  EXPECT_EQ(sched.dropped_observations(), 3u);  // total = sum of the reasons.
}

TEST(UpdateScheduler, SplitDropCountersReachTelemetrySnapshot) {
  MetricRegistry registry;  // enabled by default.
  UpdateScheduler sched(Vector{-30.0, -30.0}, 5.0);
  sched.attach_telemetry(&registry);
  sched.observe_ambient(std::vector<double>{-31.0, -31.0}, 10.0);
  sched.observe_ambient(std::vector<double>{-32.0, -32.0}, 7.0);  // out of order.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  sched.observe_ambient(std::vector<double>{nan, nan}, 11.0);  // no finite entry.

  const std::string json = registry.snapshot_json();
  EXPECT_NE(json.find("\"scheduler.dropped_out_of_order\""), std::string::npos);
  EXPECT_NE(json.find("\"scheduler.dropped_nan\""), std::string::npos);
  EXPECT_NE(json.find("\"scheduler.dropped_observations\""), std::string::npos);
}

TEST(UpdateScheduler, SaveRestoreRoundTripsAdaptiveState) {
  SchedulerConfig cfg;
  cfg.staleness_threshold_db = 2.5;
  cfg.min_interval_days = 0.5;
  cfg.max_interval_days = 60.0;
  UpdateScheduler sched(Vector{-30.0, -31.0, -32.0}, 5.0, cfg);
  sched.observe_ambient(std::vector<double>{-33.0, -33.0, -33.0}, 9.0);
  sched.observe_ambient(std::vector<double>{-33.0, -33.0, -33.0}, 7.0);  // dropped.

  storage::ByteWriter w;
  sched.save(w);
  UpdateScheduler restored(Vector{0.0}, 0.0);  // overwritten by restore().
  storage::ByteReader r(w.bytes());
  restored.restore(r);
  EXPECT_TRUE(r.exhausted());
  EXPECT_TRUE(restored == sched);
  EXPECT_DOUBLE_EQ(restored.estimated_staleness_db(), sched.estimated_staleness_db());
  EXPECT_EQ(restored.dropped_out_of_order(), 1u);
  EXPECT_EQ(restored.config().max_interval_days, 60.0);

  // The restored instance continues exactly where the original was.
  const std::vector<double> next{-26.0, -26.0, -26.0};
  EXPECT_EQ(restored.observe_ambient(next, 12.0), sched.observe_ambient(next, 12.0));
  EXPECT_TRUE(restored == sched);
}

TEST(UpdateScheduler, RestoreRejectsMalformedPayload) {
  UpdateScheduler sched(Vector{-30.0}, 0.0);
  storage::ByteWriter w;
  sched.save(w);
  const std::string bytes = w.take();
  UpdateScheduler victim(Vector{-40.0}, 1.0);
  storage::ByteReader r(std::string_view(bytes).substr(0, bytes.size() / 2));
  EXPECT_THROW(victim.restore(r), std::runtime_error);
}

/// A hand-built restore payload in save()'s exact field order, with the
/// clock / config fields chosen by the test.
std::string scheduler_payload(double updated_at, double last_observation, double staleness,
                              double threshold = 3.0, double min_interval = 1.0,
                              double max_interval = 45.0) {
  storage::ByteWriter w;
  w.put_f64_span(std::vector<double>{-30.0, -31.0});
  w.put_f64(updated_at);
  w.put_f64(last_observation);
  w.put_f64(staleness);
  w.put_u64(0);  // dropped
  w.put_u64(0);  // dropped_out_of_order
  w.put_u64(0);  // dropped_nan
  w.put_f64(threshold);
  w.put_f64(min_interval);
  w.put_f64(max_interval);
  return w.take();
}

TEST(UpdateScheduler, RestoreRejectsNonFiniteFields) {
  // A NaN last_observation_ silently disables the out-of-order drop
  // (every `t_days < last_observation_` is false), so corruption in any
  // clock field must be a hard restore error, not accepted state.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  const std::string payloads[] = {
      scheduler_payload(nan, 5.0, 0.0),         // NaN updated_at
      scheduler_payload(2.0, nan, 0.0),         // NaN last_observation
      scheduler_payload(2.0, 5.0, nan),         // NaN staleness
      scheduler_payload(2.0, 5.0, 0.0, inf),    // inf threshold
      scheduler_payload(2.0, 5.0, 0.0, 3.0, nan),  // NaN min interval
      scheduler_payload(2.0, 5.0, 0.0, 3.0, 1.0, inf),  // inf max interval
  };
  for (const std::string& bytes : payloads) {
    UpdateScheduler victim(Vector{-40.0}, 1.0);
    const UpdateScheduler untouched(Vector{-40.0}, 1.0);
    storage::ByteReader r(bytes);
    EXPECT_THROW(victim.restore(r), std::runtime_error);
    // A rejected payload must leave the scheduler bitwise as it was.
    EXPECT_TRUE(victim == untouched);
  }
}

TEST(UpdateScheduler, RestoreRejectsInconsistentClocks) {
  const std::string payloads[] = {
      scheduler_payload(5.0, 2.0, 0.0),   // observation predates the update
      scheduler_payload(-1.0, 2.0, 0.0),  // negative update time
      scheduler_payload(2.0, 5.0, -0.5),  // negative staleness
      scheduler_payload(2.0, 5.0, 0.0, 0.0),            // threshold not positive
      scheduler_payload(2.0, 5.0, 0.0, 3.0, -1.0),      // negative min interval
      scheduler_payload(2.0, 5.0, 0.0, 3.0, 5.0, 5.0),  // max == min
  };
  for (const std::string& bytes : payloads) {
    UpdateScheduler victim(Vector{-40.0}, 1.0);
    const UpdateScheduler untouched(Vector{-40.0}, 1.0);
    storage::ByteReader r(bytes);
    EXPECT_THROW(victim.restore(r), std::runtime_error);
    EXPECT_TRUE(victim == untouched);
  }
  // The boundary case last_observation_ == updated_at_ is the state
  // notify_updated() itself produces; it must restore fine.
  UpdateScheduler ok(Vector{-40.0}, 1.0);
  const std::string boundary = scheduler_payload(5.0, 5.0, 0.0);
  storage::ByteReader r(boundary);
  ok.restore(r);
  EXPECT_DOUBLE_EQ(ok.last_update_days(), 5.0);
  EXPECT_DOUBLE_EQ(ok.last_observation_days(), 5.0);
}

TEST(UpdateScheduler, AdaptiveBehaviourOnSimulatedDrift) {
  // On the simulated room the ambient drifts with the power law; the
  // scheduler should stay quiet early and trigger once mean drift
  // crosses its threshold -- i.e. the trigger day tracks g(t).
  const Scenario s = Scenario::paper_room(5);
  Rng rng(5);
  SchedulerConfig cfg;
  cfg.staleness_threshold_db = 3.0;
  cfg.max_interval_days = 365.0;
  UpdateScheduler sched(s.collector().ambient_scan(0.0, rng), 0.0, cfg);

  double triggered_at = -1.0;
  for (double t = 2.0; t <= 90.0; t += 2.0) {
    if (sched.observe_ambient(s.collector().ambient_scan(t, rng), t)) {
      triggered_at = t;
      break;
    }
  }
  // g(t) = 2.5 (t/5)^0.398 crosses 3.0 dB around t ~ 8 days; noise in
  // the scan shifts it a little.
  ASSERT_GT(triggered_at, 0.0);
  EXPECT_GT(triggered_at, 3.0);
  EXPECT_LT(triggered_at, 30.0);
}

TEST(UpdateScheduler, EndToEndWithTafLocSystem) {
  const Scenario s = Scenario::paper_room(6);
  Rng rng(6);
  TafLocSystem system(s.deployment());
  system.calibrate(s.collector().survey_all(0.0, rng), s.collector().ambient_scan(0.0, rng),
                   0.0);
  UpdateScheduler sched(Vector(s.collector().ambient_scan(0.0, rng)), 0.0);

  std::size_t updates = 0;
  for (double t = 5.0; t <= 90.0; t += 5.0) {
    Vector ambient = s.collector().ambient_scan(t, rng);
    if (sched.observe_ambient(ambient, t)) {
      system.update_with_collector(s.collector(), t, rng);
      sched.notify_updated(std::move(ambient), t);
      ++updates;
    }
  }
  EXPECT_GE(updates, 1u);
  EXPECT_LE(updates, 10u);
  // The database must not be older than the scheduler's max interval.
  EXPECT_GE(system.database().surveyed_at_days(), 90.0 - sched.config().max_interval_days);
}

}  // namespace
}  // namespace tafloc
