// Ingest: the node batch codec (versioned, CRC-framed, bit-exact) and
// the per-zone BatchAssembler (dedup / staleness / out-of-order merge
// with exact accounting), plus the NodeNetwork traffic simulator that
// feeds them in the torture tests and the load harness.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "tafloc/ingest/assembler.h"
#include "tafloc/ingest/batch.h"
#include "tafloc/sim/node_net.h"
#include "tafloc/storage/record.h"
#include "tafloc/util/rng.h"

namespace tafloc::ingest {
namespace {

NodeBatch make_batch(std::uint32_t node_id,
                     std::initializer_list<NodeReading> readings) {
  NodeBatch batch;
  batch.node_id = node_id;
  batch.readings.assign(readings);
  return batch;
}

// ---- codec ----

TEST(NodeBatchCodec, RoundTripsIncludingNaN) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const NodeBatch batch = make_batch(7, {{0, -41.25, 1, 2.5},
                                         {3, nan, 2, 2.5},  // dead-link report.
                                         {1, -60.0, 3, 3.0}});
  storage::ByteWriter w;
  batch.encode(w);
  storage::ByteReader r(w.bytes());
  const NodeBatch decoded = NodeBatch::decode(r);
  EXPECT_TRUE(r.exhausted());
  EXPECT_TRUE(decoded == batch);  // bit-exact, NaN included.
}

TEST(NodeBatchCodec, EmptyBatchRoundTrips) {
  const NodeBatch batch = make_batch(0, {});
  storage::ByteWriter w;
  batch.encode(w);
  storage::ByteReader r(w.bytes());
  EXPECT_TRUE(NodeBatch::decode(r) == batch);
}

TEST(NodeBatchCodec, RejectsWrongVersion) {
  storage::ByteWriter w;
  w.put_u32(kBatchFormatVersion + 1);
  w.put_u32(7);   // node id
  w.put_u64(0);   // reading count
  storage::ByteReader r(w.bytes());
  EXPECT_THROW((void)NodeBatch::decode(r), std::runtime_error);
}

TEST(NodeBatchCodec, RejectsTruncation) {
  const NodeBatch batch = make_batch(7, {{0, -41.0, 1, 1.0}, {1, -42.0, 2, 1.0}});
  storage::ByteWriter w;
  batch.encode(w);
  const std::string bytes = w.take();
  for (const std::size_t keep : {bytes.size() - 1, bytes.size() / 2, std::size_t{3}}) {
    storage::ByteReader r(std::string_view(bytes).substr(0, keep));
    EXPECT_THROW((void)NodeBatch::decode(r), std::runtime_error) << "kept " << keep;
  }
}

TEST(NodeBatchCodec, RejectsAbsurdDeclaredCount) {
  storage::ByteWriter w;
  w.put_u32(kBatchFormatVersion);
  w.put_u32(7);
  w.put_u64(0x7fffffff);  // declared readings far beyond the payload.
  storage::ByteReader r(w.bytes());
  EXPECT_THROW((void)NodeBatch::decode(r), std::runtime_error);
}

TEST(NodeBatchCodec, FrameRoundTripAndTypeCheck) {
  const NodeBatch batch = make_batch(3, {{2, -55.5, 9, 4.0}});
  const std::string framed = batch.to_frame(17);

  std::size_t pos = 0;
  storage::Frame frame;
  ASSERT_EQ(storage::decode_frame(framed, pos, frame), storage::FrameStatus::kOk);
  EXPECT_EQ(frame.type, kBatchRecordType);
  EXPECT_EQ(frame.seq, 17u);
  EXPECT_TRUE(NodeBatch::from_frame(frame) == batch);

  // A frame of another type must be refused, not misparsed.
  storage::Frame wrong = frame;
  wrong.type = kBatchRecordType + 1;
  EXPECT_THROW((void)NodeBatch::from_frame(wrong), std::runtime_error);

  // A flipped payload bit is caught by the CRC before decode runs.
  std::string flipped = framed;
  flipped[flipped.size() - 1] ^= 0x01;
  pos = 0;
  EXPECT_EQ(storage::decode_frame(flipped, pos, frame), storage::FrameStatus::kCorrupt);
}

// ---- assembler ----

AssemblerConfig small_config(std::size_t num_links = 3, std::size_t window = 8,
                             std::size_t max_pending = 4) {
  AssemblerConfig config;
  config.num_links = num_links;
  config.dedup_window = window;
  config.max_pending_rounds = max_pending;
  return config;
}

TEST(BatchAssembler, RejectsDegenerateConfig) {
  EXPECT_THROW(BatchAssembler(small_config(0)), std::invalid_argument);
  EXPECT_THROW(BatchAssembler(small_config(3, 0)), std::invalid_argument);
  EXPECT_THROW(BatchAssembler(small_config(3, 8, 0)), std::invalid_argument);
}

TEST(BatchAssembler, MergesNodeBatchesIntoACompleteRound) {
  BatchAssembler asm_(small_config());
  // Two nodes cover links {0, 2} and {1} of one t=1.0 round.
  EXPECT_TRUE(asm_.ingest(make_batch(0, {{0, -40.0, 1, 1.0}, {2, -42.0, 2, 1.0}})).empty());
  EXPECT_EQ(asm_.pending_rounds(), 1u);
  const auto rounds = asm_.ingest(make_batch(1, {{1, -41.0, 1, 1.0}}));
  ASSERT_EQ(rounds.size(), 1u);
  EXPECT_EQ(rounds[0].t_days, 1.0);
  EXPECT_EQ(rounds[0].readings, 3u);
  EXPECT_EQ(rounds[0].y, (Vector{-40.0, -41.0, -42.0}));
  EXPECT_EQ(asm_.pending_rounds(), 0u);
  EXPECT_EQ(asm_.counters().readings, 3u);
  EXPECT_EQ(asm_.counters().rounds_completed, 1u);
}

TEST(BatchAssembler, NaNReadingStillCoversItsLink) {
  BatchAssembler asm_(small_config());
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const auto rounds = asm_.ingest(
      make_batch(0, {{0, -40.0, 1, 1.0}, {1, nan, 2, 1.0}, {2, -42.0, 3, 1.0}}));
  ASSERT_EQ(rounds.size(), 1u);  // the dead-link report completes the round.
  EXPECT_TRUE(std::isnan(rounds[0].y[1]));
}

TEST(BatchAssembler, RetransmittedBatchChangesNothing) {
  BatchAssembler asm_(small_config());
  const NodeBatch batch = make_batch(0, {{0, -40.0, 1, 1.0}, {1, -41.0, 2, 1.0}});
  EXPECT_TRUE(asm_.ingest(batch).empty());
  EXPECT_TRUE(asm_.ingest(batch).empty());  // verbatim retransmit.
  EXPECT_EQ(asm_.counters().readings, 2u);
  EXPECT_EQ(asm_.counters().dups_dropped, 2u);
  // The round still completes exactly once, from the remaining link.
  const auto rounds = asm_.ingest(make_batch(1, {{2, -42.0, 1, 1.0}}));
  ASSERT_EQ(rounds.size(), 1u);
  EXPECT_EQ(rounds[0].y, (Vector{-40.0, -41.0, -42.0}));
  EXPECT_EQ(asm_.counters().rounds_completed, 1u);
}

TEST(BatchAssembler, DuplicateLinkInOneRoundFirstWriteWins) {
  BatchAssembler asm_(small_config());
  // Two *distinct* sequences claiming the same (round, link): the first
  // write wins deterministically, the second is a dup.
  EXPECT_TRUE(asm_.ingest(make_batch(0, {{0, -40.0, 1, 1.0}, {0, -99.0, 2, 1.0}})).empty());
  EXPECT_EQ(asm_.counters().dups_dropped, 1u);
  const auto rounds =
      asm_.ingest(make_batch(1, {{1, -41.0, 1, 1.0}, {2, -42.0, 2, 1.0}}));
  ASSERT_EQ(rounds.size(), 1u);
  EXPECT_EQ(rounds[0].y[0], -40.0);
}

TEST(BatchAssembler, BadReadingsAreCountedNotFatal) {
  BatchAssembler asm_(small_config());
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_TRUE(asm_.ingest(make_batch(0, {{99, -40.0, 1, 1.0},    // link out of range
                                         {0, -40.0, 2, nan}}))   // non-finite round key
                  .empty());
  EXPECT_EQ(asm_.counters().bad_readings, 2u);
  EXPECT_EQ(asm_.counters().readings, 0u);
  EXPECT_EQ(asm_.pending_rounds(), 0u);
}

TEST(BatchAssembler, ReadingForACompletedRoundIsStale) {
  BatchAssembler asm_(small_config());
  (void)asm_.ingest(
      make_batch(0, {{0, -40.0, 1, 1.0}, {1, -41.0, 2, 1.0}, {2, -42.0, 3, 1.0}}));
  ASSERT_EQ(asm_.counters().rounds_completed, 1u);
  // A straggler for the closed t=1.0 round carries no information.
  EXPECT_TRUE(asm_.ingest(make_batch(1, {{0, -40.5, 1, 1.0}})).empty());
  EXPECT_EQ(asm_.counters().stale_dropped, 1u);
  EXPECT_EQ(asm_.pending_rounds(), 0u);
}

TEST(BatchAssembler, OutOfOrderRoundStillCompletesLate) {
  BatchAssembler asm_(small_config());
  // t=1.0 opens first but t=2.0 completes first.
  EXPECT_TRUE(asm_.ingest(make_batch(0, {{0, -40.0, 1, 1.0}, {1, -41.0, 2, 1.0}})).empty());
  const auto newer = asm_.ingest(
      make_batch(1, {{0, -50.0, 1, 2.0}, {1, -51.0, 2, 2.0}, {2, -52.0, 3, 2.0}}));
  ASSERT_EQ(newer.size(), 1u);
  EXPECT_EQ(newer[0].t_days, 2.0);
  // The older round is past the closed watermark but still OPEN, so it
  // keeps merging and completes late -- the scheduler's out-of-order
  // drop downstream judges its timestamp, not the assembler.
  const auto older = asm_.ingest(make_batch(0, {{2, -42.0, 3, 1.0}}));
  ASSERT_EQ(older.size(), 1u);
  EXPECT_EQ(older[0].t_days, 1.0);
  EXPECT_EQ(older[0].y, (Vector{-40.0, -41.0, -42.0}));
  EXPECT_EQ(asm_.counters().rounds_completed, 2u);
  // But a NEW round at/below the watermark is refused as stale.
  EXPECT_TRUE(asm_.ingest(make_batch(0, {{0, -40.0, 4, 1.5}})).empty());
  EXPECT_EQ(asm_.counters().stale_dropped, 1u);
}

TEST(BatchAssembler, OneBatchCompletingTwoRoundsEmitsOldestFirst) {
  BatchAssembler asm_(small_config());
  (void)asm_.ingest(make_batch(0, {{0, -40.0, 1, 1.0}, {1, -41.0, 2, 1.0}}));
  (void)asm_.ingest(make_batch(0, {{0, -50.0, 3, 2.0}, {1, -51.0, 4, 2.0}}));
  const auto rounds =
      asm_.ingest(make_batch(1, {{2, -52.0, 1, 2.0}, {2, -42.0, 2, 1.0}}));
  ASSERT_EQ(rounds.size(), 2u);
  EXPECT_EQ(rounds[0].t_days, 1.0);
  EXPECT_EQ(rounds[1].t_days, 2.0);
}

TEST(BatchAssembler, SequencesBelowTheDedupWindowAreStale) {
  BatchAssembler asm_(small_config(3, /*window=*/4));
  // Push 8 distinct sequences through node 0 (spread over two rounds so
  // nothing completes); the window keeps the newest 4, so low = 5.
  (void)asm_.ingest(make_batch(0, {{0, -40.0, 1, 1.0}, {1, -41.0, 2, 1.0}}));
  (void)asm_.ingest(make_batch(0, {{0, -50.0, 3, 2.0}, {1, -51.0, 4, 2.0}}));
  (void)asm_.ingest(make_batch(0, {{2, -42.0, 5, 3.0}, {2, -52.0, 6, 4.0}}));
  (void)asm_.ingest(make_batch(0, {{0, -60.0, 7, 5.0}, {1, -61.0, 8, 5.0}}));
  const IngestCounters before = asm_.counters();
  // Sequence 2 fell out of the window: indistinguishable from a dup of
  // an expired measurement, dropped as stale (not as a fresh reading).
  (void)asm_.ingest(make_batch(0, {{2, -43.0, 2, 5.0}}));
  EXPECT_EQ(asm_.counters().stale_dropped, before.stale_dropped + 1);
  EXPECT_EQ(asm_.counters().readings, before.readings);
  // Another node's sequence 2 is untouched -- the window is per node.
  (void)asm_.ingest(make_batch(1, {{2, -43.0, 2, 5.0}}));
  EXPECT_EQ(asm_.counters().readings, before.readings + 1);
}

TEST(BatchAssembler, PendingRoundCapEvictsTheOldest) {
  BatchAssembler asm_(small_config(3, 64, /*max_pending=*/2));
  (void)asm_.ingest(make_batch(0, {{0, -40.0, 1, 1.0}}));
  (void)asm_.ingest(make_batch(0, {{0, -40.0, 2, 2.0}}));
  (void)asm_.ingest(make_batch(0, {{0, -40.0, 3, 3.0}}));  // evicts t=1.0.
  EXPECT_EQ(asm_.pending_rounds(), 2u);
  EXPECT_EQ(asm_.counters().rounds_expired, 1u);
  // Readings for the evicted round are stale now.
  (void)asm_.ingest(make_batch(1, {{1, -41.0, 1, 1.0}}));
  EXPECT_EQ(asm_.counters().stale_dropped, 1u);
  EXPECT_EQ(asm_.pending_rounds(), 2u);
}

TEST(BatchAssembler, AccountingIsExhaustive) {
  // Every ingested reading lands in exactly one counter bucket.
  BatchAssembler asm_(small_config());
  const double nan = std::numeric_limits<double>::quiet_NaN();
  std::uint64_t sent = 0;
  const auto send = [&](const NodeBatch& b) {
    sent += b.readings.size();
    (void)asm_.ingest(b);
  };
  send(make_batch(0, {{0, -40.0, 1, 1.0}, {1, -41.0, 2, 1.0}, {2, -42.0, 3, 1.0}}));
  send(make_batch(0, {{0, -40.0, 1, 1.0}}));             // dup sequence.
  send(make_batch(1, {{0, -40.0, 1, 1.0}}));             // stale (closed round).
  send(make_batch(1, {{7, -40.0, 2, 2.0}, {0, nan, 3, nan}}));  // two bad.
  const IngestCounters& c = asm_.counters();
  EXPECT_EQ(c.readings + c.dups_dropped + c.stale_dropped + c.bad_readings, sent);
  EXPECT_EQ(c.readings, 3u);
  EXPECT_EQ(c.dups_dropped, 1u);
  EXPECT_EQ(c.stale_dropped, 1u);
  EXPECT_EQ(c.bad_readings, 2u);
  EXPECT_EQ(c.batches, 4u);
}

// ---- movement gate ----

TEST(MovementDb, MatchesTheSchedulerStalenessMean) {
  const Vector baseline{-40.0, -50.0, -60.0};
  EXPECT_DOUBLE_EQ(movement_db(Vector{-40.0, -50.0, -60.0}, baseline), 0.0);
  EXPECT_DOUBLE_EQ(movement_db(Vector{-42.0, -49.0, -60.0}, baseline), 1.0);
}

TEST(MovementDb, AveragesOverMutuallyFiniteEntriesOnly) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_DOUBLE_EQ(movement_db(Vector{-42.0, nan}, Vector{-40.0, -50.0}), 2.0);
  EXPECT_DOUBLE_EQ(movement_db(Vector{-42.0, -56.0}, Vector{-40.0, nan}), 2.0);
  EXPECT_DOUBLE_EQ(movement_db(Vector{nan, nan}, Vector{nan, nan}), 0.0);
  EXPECT_THROW((void)movement_db(Vector{1.0}, Vector{1.0, 2.0}), std::invalid_argument);
}

// ---- NodeNetwork ----

TEST(NodeNetwork, PartitionsLinksRoundRobinWithMonotonicSequences) {
  NodeNetwork net(5, 2);
  const Vector y{-40.0, -41.0, -42.0, -43.0, -44.0};
  const auto batches = net.emit_round(y, 1.0);
  ASSERT_EQ(batches.size(), 2u);
  // Node 0 owns links 0, 2, 4; node 1 owns 1, 3.
  ASSERT_EQ(batches[0].readings.size(), 3u);
  ASSERT_EQ(batches[1].readings.size(), 2u);
  EXPECT_EQ(batches[0].readings[1].link, 2u);
  EXPECT_EQ(batches[0].readings[1].rss, -42.0);
  EXPECT_EQ(batches[1].readings[0].link, 1u);

  // Sequences are per node and strictly monotonic across rounds.
  const auto second = net.emit_round(y, 2.0);
  EXPECT_EQ(batches[0].readings[0].sequence, 1u);
  EXPECT_EQ(second[0].readings[0].sequence, 4u);   // node 0 emitted 3 already.
  EXPECT_EQ(second[1].readings[0].sequence, 3u);   // node 1 emitted 2.

  // Every link is covered exactly once per round.
  BatchAssembler asm_(AssemblerConfig{.num_links = 5});
  (void)asm_.ingest(second[0]);
  const auto rounds = asm_.ingest(second[1]);
  ASSERT_EQ(rounds.size(), 1u);
  EXPECT_EQ(rounds[0].y, y);
}

TEST(NodeNetwork, SurplusNodesStaySilent) {
  NodeNetwork net(2, 8);
  const auto batches = net.emit_round(Vector{-40.0, -41.0}, 1.0);
  EXPECT_EQ(batches.size(), 2u);  // only nodes owning a link emit.
}

TEST(NodeNetwork, PerturbOnlyRepeatsAndReorders) {
  NodeNetwork net(6, 3);
  const Vector y{-40.0, -41.0, -42.0, -43.0, -44.0, -45.0};
  auto batches = net.emit_round(y, 1.0);
  const auto original = batches;
  Rng rng(99);
  NodeNetwork::perturb(batches, /*dup_fraction=*/1.0, /*shuffle=*/true, rng);
  EXPECT_EQ(batches.size(), 2 * original.size());  // dup_fraction=1 doubles.
  // Every perturbed batch is verbatim one of the originals: no invented
  // sequences, no edited readings.
  for (const NodeBatch& b : batches) {
    bool found = false;
    for (const NodeBatch& o : original) {
      if (b == o) found = true;
    }
    EXPECT_TRUE(found);
  }
  EXPECT_THROW(NodeNetwork::perturb(batches, 1.5, false, rng), std::invalid_argument);
}

TEST(NodeNetwork, RejectsDegenerateShapes) {
  EXPECT_THROW(NodeNetwork(0, 1), std::invalid_argument);
  EXPECT_THROW(NodeNetwork(1, 0), std::invalid_argument);
  NodeNetwork net(3, 1);
  EXPECT_THROW((void)net.emit_round(Vector{1.0}, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace tafloc::ingest
