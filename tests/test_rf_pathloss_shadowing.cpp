#include <gtest/gtest.h>

#include <cmath>

#include "tafloc/rf/pathloss.h"
#include "tafloc/rf/shadowing.h"

namespace tafloc {
namespace {

// ---------------- path loss ----------------

TEST(PathLoss, ReferenceDistanceValue) {
  PathLossConfig cfg;
  cfg.tx_power_dbm = 15.0;
  cfg.reference_loss_db = 40.0;
  const LogDistancePathLoss pl(cfg);
  EXPECT_DOUBLE_EQ(pl.rss_dbm(1.0), -25.0);
}

TEST(PathLoss, DecadeDropsTenEta) {
  PathLossConfig cfg;
  cfg.path_loss_exponent = 2.5;
  const LogDistancePathLoss pl(cfg);
  EXPECT_NEAR(pl.rss_dbm(1.0) - pl.rss_dbm(10.0), 25.0, 1e-10);
}

TEST(PathLoss, MonotoneDecreasingInDistance) {
  const LogDistancePathLoss pl;
  double prev = pl.rss_dbm(1.0);
  for (double d = 2.0; d < 40.0; d += 3.0) {
    const double cur = pl.rss_dbm(d);
    EXPECT_LT(cur, prev);
    prev = cur;
  }
}

TEST(PathLoss, ClampsBelowReferenceDistance) {
  const LogDistancePathLoss pl;
  EXPECT_DOUBLE_EQ(pl.rss_dbm(0.5), pl.rss_dbm(1.0));
}

TEST(PathLoss, SegmentOverloadUsesLength) {
  const LogDistancePathLoss pl;
  const Segment s{{0.0, 0.0}, {5.0, 0.0}};
  EXPECT_DOUBLE_EQ(pl.rss_dbm(s), pl.rss_dbm(5.0));
}

TEST(PathLoss, RejectsNonPositiveDistance) {
  const LogDistancePathLoss pl;
  EXPECT_THROW(pl.rss_dbm(0.0), std::invalid_argument);
  EXPECT_THROW(pl.rss_dbm(-1.0), std::invalid_argument);
}

TEST(PathLoss, RejectsBadConfig) {
  PathLossConfig cfg;
  cfg.reference_distance_m = 0.0;
  EXPECT_THROW(LogDistancePathLoss{cfg}, std::invalid_argument);
  cfg = PathLossConfig{};
  cfg.path_loss_exponent = -1.0;
  EXPECT_THROW(LogDistancePathLoss{cfg}, std::invalid_argument);
}

// ---------------- shadowing ----------------

TEST(Shadowing, MaximalOnLineOfSight) {
  ShadowingConfig cfg;
  cfg.max_attenuation_db = 6.0;
  cfg.los_block_db = 3.0;
  const TargetShadowingModel model(cfg);
  const Segment link{{0.0, 0.0}, {10.0, 0.0}};
  // On the LoS: full exponential term + body-block extra.
  EXPECT_NEAR(model.attenuation_db(link, {5.0, 0.0}), 9.0, 1e-9);
}

TEST(Shadowing, DecaysWithExcessPath) {
  const TargetShadowingModel model;
  const Segment link{{0.0, 0.0}, {10.0, 0.0}};
  const double a1 = model.attenuation_db(link, {5.0, 0.5});
  const double a2 = model.attenuation_db(link, {5.0, 1.0});
  const double a3 = model.attenuation_db(link, {5.0, 2.0});
  EXPECT_GT(a1, a2);
  EXPECT_GT(a2, a3);
  EXPECT_GE(a3, 0.0);
}

TEST(Shadowing, FarTargetNegligible) {
  const TargetShadowingModel model;
  const Segment link{{0.0, 0.0}, {10.0, 0.0}};
  EXPECT_LT(model.attenuation_db(link, {5.0, 8.0}), 0.01);
}

TEST(Shadowing, ExponentialDecayRate) {
  ShadowingConfig cfg;
  cfg.max_attenuation_db = 6.0;
  cfg.decay_m = 0.18;
  cfg.los_block_db = 0.0;  // isolate the exponential term
  cfg.body_radius_m = 0.0;
  const TargetShadowingModel model(cfg);
  const Segment link{{0.0, 0.0}, {6.0, 0.0}};
  const Point2 p{3.0, 1.0};
  const double excess = excess_path_length(p, link);
  EXPECT_NEAR(model.attenuation_db(link, p), 6.0 * std::exp(-excess / 0.18), 1e-12);
}

TEST(Shadowing, BlocksLosWithinBodyRadius) {
  ShadowingConfig cfg;
  cfg.body_radius_m = 0.25;
  const TargetShadowingModel model(cfg);
  const Segment link{{0.0, 0.0}, {10.0, 0.0}};
  EXPECT_TRUE(model.blocks_los(link, {5.0, 0.2}));
  EXPECT_FALSE(model.blocks_los(link, {5.0, 0.3}));
}

TEST(Shadowing, ContinuityAlongLink) {
  // Moving the target by one 0.6 m grid step along the link changes the
  // attenuation smoothly (fingerprint property iii, continuity).
  const TargetShadowingModel model;
  const Segment link{{0.0, 2.0}, {7.2, 2.0}};
  double prev = model.attenuation_db(link, {0.3, 2.3});
  for (double x = 0.9; x < 7.0; x += 0.6) {
    const double cur = model.attenuation_db(link, {x, 2.3});
    EXPECT_LT(std::abs(cur - prev), 2.2);  // no jumps
    prev = cur;
  }
}

TEST(Shadowing, SimilarityAcrossAdjacentLinks) {
  // Two parallel links 0.48 m apart see similar attenuation from the
  // same target (fingerprint property iii, similarity).
  const TargetShadowingModel model;
  const Segment l1{{0.0, 2.0}, {7.2, 2.0}};
  const Segment l2{{0.0, 2.48}, {7.2, 2.48}};
  const Point2 target{3.6, 2.24};
  const double a1 = model.attenuation_db(l1, target);
  const double a2 = model.attenuation_db(l2, target);
  EXPECT_LT(std::abs(a1 - a2), 2.0);
  EXPECT_GT(a1, 0.5);  // both are actually affected
  EXPECT_GT(a2, 0.5);
}

TEST(Shadowing, RejectsBadConfig) {
  ShadowingConfig cfg;
  cfg.decay_m = 0.0;
  EXPECT_THROW(TargetShadowingModel{cfg}, std::invalid_argument);
  cfg = ShadowingConfig{};
  cfg.max_attenuation_db = -1.0;
  EXPECT_THROW(TargetShadowingModel{cfg}, std::invalid_argument);
}

}  // namespace
}  // namespace tafloc
