#include "tafloc/linalg/qr.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "tafloc/linalg/ops.h"
#include "tafloc/util/rng.h"

namespace tafloc {
namespace {

/// ||Q^T Q - I||_max.
double orthogonality_defect(const Matrix& q) {
  const Matrix qtq = gram_product(q, q);
  return max_abs_diff(qtq, Matrix::identity(q.cols()));
}

bool is_upper_trapezoidal(const Matrix& r, double tol = 1e-12) {
  for (std::size_t i = 0; i < r.rows(); ++i)
    for (std::size_t j = 0; j < std::min(i, r.cols()); ++j)
      if (std::abs(r(i, j)) > tol) return false;
  return true;
}

TEST(Qr, ReconstructsTallMatrix) {
  Rng rng(1);
  const Matrix a = random_gaussian(8, 4, rng);
  const QrDecomposition qr = qr_decompose(a);
  EXPECT_EQ(qr.q.rows(), 8u);
  EXPECT_EQ(qr.q.cols(), 4u);
  EXPECT_EQ(qr.r.rows(), 4u);
  EXPECT_EQ(qr.r.cols(), 4u);
  EXPECT_LT(max_abs_diff(qr.q * qr.r, a), 1e-10);
}

TEST(Qr, ReconstructsWideMatrix) {
  Rng rng(2);
  const Matrix a = random_gaussian(3, 7, rng);
  const QrDecomposition qr = qr_decompose(a);
  EXPECT_EQ(qr.q.cols(), 3u);
  EXPECT_EQ(qr.r.rows(), 3u);
  EXPECT_EQ(qr.r.cols(), 7u);
  EXPECT_LT(max_abs_diff(qr.q * qr.r, a), 1e-10);
}

TEST(Qr, QHasOrthonormalColumns) {
  Rng rng(3);
  const Matrix a = random_gaussian(10, 6, rng);
  const QrDecomposition qr = qr_decompose(a);
  EXPECT_LT(orthogonality_defect(qr.q), 1e-10);
}

TEST(Qr, RIsUpperTriangular) {
  Rng rng(4);
  const Matrix a = random_gaussian(6, 6, rng);
  const QrDecomposition qr = qr_decompose(a);
  EXPECT_TRUE(is_upper_trapezoidal(qr.r));
}

TEST(Qr, HandlesIdentity) {
  const Matrix id = Matrix::identity(4);
  const QrDecomposition qr = qr_decompose(id);
  EXPECT_LT(max_abs_diff(qr.q * qr.r, id), 1e-12);
}

TEST(Qr, HandlesZeroColumn) {
  Matrix a = Matrix::from_rows({{1.0, 0.0}, {1.0, 0.0}, {0.0, 0.0}});
  const QrDecomposition qr = qr_decompose(a);
  EXPECT_LT(max_abs_diff(qr.q * qr.r, a), 1e-12);
}

TEST(Qr, RejectsEmptyMatrix) {
  Matrix empty;
  EXPECT_THROW(qr_decompose(empty), std::invalid_argument);
}

TEST(Qr, SingleColumn) {
  const Matrix a = Matrix::from_rows({{3.0}, {4.0}});
  const QrDecomposition qr = qr_decompose(a);
  EXPECT_NEAR(std::abs(qr.r(0, 0)), 5.0, 1e-12);
  EXPECT_LT(max_abs_diff(qr.q * qr.r, a), 1e-12);
}

// ---------------- pivoted QR ----------------

TEST(PivotedQr, ReconstructsThroughPermutation) {
  Rng rng(5);
  const Matrix a = random_gaussian(6, 9, rng);
  const PivotedQr qr = qr_decompose_pivoted(a);
  // a * P == q * r, i.e. column permutation[k] of a equals column k of q*r.
  const Matrix qr_prod = qr.q * qr.r;
  for (std::size_t k = 0; k < a.cols(); ++k) {
    const Vector orig = a.col(qr.permutation[k]);
    const Vector got = qr_prod.col(k);
    for (std::size_t i = 0; i < orig.size(); ++i) EXPECT_NEAR(orig[i], got[i], 1e-10);
  }
}

TEST(PivotedQr, PermutationIsAPermutation) {
  Rng rng(6);
  const Matrix a = random_gaussian(4, 7, rng);
  const PivotedQr qr = qr_decompose_pivoted(a);
  std::set<std::size_t> seen(qr.permutation.begin(), qr.permutation.end());
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(PivotedQr, DiagonalOfRIsNonIncreasing) {
  Rng rng(7);
  const Matrix a = random_gaussian(8, 8, rng);
  const PivotedQr qr = qr_decompose_pivoted(a);
  for (std::size_t i = 1; i < 8; ++i)
    EXPECT_LE(std::abs(qr.r(i, i)), std::abs(qr.r(i - 1, i - 1)) + 1e-10);
}

TEST(PivotedQr, RankOfExactlyLowRankMatrix) {
  Rng rng(8);
  const Matrix a = random_low_rank(10, 12, 3, rng);
  const PivotedQr qr = qr_decompose_pivoted(a);
  EXPECT_EQ(qr.rank(1e-8), 3u);
}

TEST(PivotedQr, RankOfFullRankMatrix) {
  Rng rng(9);
  const Matrix a = random_gaussian(5, 5, rng);
  EXPECT_EQ(qr_decompose_pivoted(a).rank(), 5u);
}

TEST(PivotedQr, RankOfZeroMatrixIsZero) {
  const Matrix z(4, 4);
  EXPECT_EQ(qr_decompose_pivoted(z).rank(), 0u);
}

TEST(PivotedQr, FirstPivotIsLargestColumn) {
  // Column 2 has by far the largest norm, so it must be pivoted first.
  const Matrix a = Matrix::from_rows({{1.0, 0.0, 10.0}, {0.0, 1.0, 10.0}});
  const PivotedQr qr = qr_decompose_pivoted(a);
  EXPECT_EQ(qr.permutation[0], 2u);
}

TEST(PivotedQr, PivotsSpanBeforeDuplicates) {
  // Columns: e1, e1 (duplicate), e2.  A rank-revealing pivot order must
  // place the duplicate last.
  const Matrix a = Matrix::from_rows({{1.0, 1.0, 0.0}, {0.0, 0.0, 1.0}});
  const PivotedQr qr = qr_decompose_pivoted(a);
  EXPECT_EQ(qr.permutation[2] == 0 || qr.permutation[2] == 1, true);
  EXPECT_EQ(qr.rank(1e-10), 2u);
}

TEST(PivotedQr, QOrthonormal) {
  Rng rng(10);
  const Matrix a = random_gaussian(9, 5, rng);
  const PivotedQr qr = qr_decompose_pivoted(a);
  EXPECT_LT(orthogonality_defect(qr.q), 1e-10);
}

// ---------------- triangular solve ----------------

TEST(TriangularSolve, SolvesKnownSystem) {
  const Matrix r = Matrix::from_rows({{2.0, 1.0}, {0.0, 4.0}});
  const std::vector<double> b{4.0, 8.0};
  const Vector x = solve_upper_triangular(r, b);
  EXPECT_DOUBLE_EQ(x[1], 2.0);
  EXPECT_DOUBLE_EQ(x[0], 1.0);
}

TEST(TriangularSolve, RejectsSingular) {
  const Matrix r = Matrix::from_rows({{1.0, 1.0}, {0.0, 0.0}});
  const std::vector<double> b{1.0, 1.0};
  EXPECT_THROW(solve_upper_triangular(r, b), std::invalid_argument);
}

TEST(TriangularSolve, RejectsNonSquare) {
  const Matrix r(2, 3);
  const std::vector<double> b{1.0, 1.0};
  EXPECT_THROW(solve_upper_triangular(r, b), std::invalid_argument);
}

// Parameterized sweep: QR invariants across shapes.
class QrShapeSweep : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(QrShapeSweep, FactorizationInvariants) {
  const auto [m, n] = GetParam();
  Rng rng(100 + m * 13 + n);
  const Matrix a = random_gaussian(m, n, rng);
  const QrDecomposition qr = qr_decompose(a);
  EXPECT_LT(max_abs_diff(qr.q * qr.r, a), 1e-9);
  EXPECT_LT(orthogonality_defect(qr.q), 1e-9);
  EXPECT_TRUE(is_upper_trapezoidal(qr.r, 1e-10));

  const PivotedQr pqr = qr_decompose_pivoted(a);
  EXPECT_LT(orthogonality_defect(pqr.q), 1e-9);
  const Matrix permuted = a.select_columns(pqr.permutation);
  EXPECT_LT(max_abs_diff(pqr.q * pqr.r, permuted), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Shapes, QrShapeSweep,
                         ::testing::Values(std::make_pair<std::size_t, std::size_t>(1, 1),
                                           std::make_pair<std::size_t, std::size_t>(5, 1),
                                           std::make_pair<std::size_t, std::size_t>(1, 5),
                                           std::make_pair<std::size_t, std::size_t>(4, 4),
                                           std::make_pair<std::size_t, std::size_t>(12, 5),
                                           std::make_pair<std::size_t, std::size_t>(5, 12),
                                           std::make_pair<std::size_t, std::size_t>(20, 20)));

}  // namespace
}  // namespace tafloc
