#include "tafloc/recon/lrr.h"

#include <gtest/gtest.h>

#include "tafloc/fingerprint/reference.h"
#include "tafloc/linalg/ops.h"
#include "tafloc/linalg/svd.h"
#include "tafloc/sim/scenario.h"

namespace tafloc {
namespace {

TEST(Lrr, ExactOnLowRankData) {
  Rng rng(1);
  const Matrix x0 = random_low_rank(8, 30, 3, rng);
  const auto refs = select_reference_locations(x0, 3, ReferencePolicy::QrPivot);
  const LrrModel lrr(x0, refs);
  EXPECT_LT(lrr.training_residual(), 1e-5);
  const Matrix predicted = lrr.predict(x0.select_columns(refs));
  EXPECT_LT(max_abs_diff(predicted, x0), 1e-5);
}

TEST(Lrr, CorrelationShape) {
  Rng rng(2);
  const Matrix x0 = random_low_rank(6, 20, 2, rng);
  const LrrModel lrr(x0, {0, 5});
  EXPECT_EQ(lrr.correlation().rows(), 2u);
  EXPECT_EQ(lrr.correlation().cols(), 20u);
  EXPECT_EQ(lrr.num_references(), 2u);
  EXPECT_EQ(lrr.num_grids(), 20u);
}

TEST(Lrr, ReferenceColumnsMapNearIdentity) {
  // Predicting from the training reference columns must reproduce them.
  Rng rng(3);
  const Matrix x0 = random_low_rank(8, 25, 4, rng);
  const auto refs = select_reference_locations(x0, 4, ReferencePolicy::QrPivot);
  const LrrModel lrr(x0, refs);
  const Matrix pred = lrr.predict(x0.select_columns(refs));
  for (std::size_t k = 0; k < refs.size(); ++k) {
    for (std::size_t i = 0; i < x0.rows(); ++i)
      EXPECT_NEAR(pred(i, refs[k]), x0(i, refs[k]), 1e-5);
  }
}

TEST(Lrr, SurvivesRowOffsetDrift) {
  // Core premise of the paper: a per-link additive drift d * 1^T keeps
  // X(t) = X_R(t) * Z with the SAME Z -- provided the columns of Z at
  // each location sum appropriately.  Verify the prediction error stays
  // tiny after synthetic row-offset drift.
  Rng rng(4);
  const Matrix x0 = random_low_rank(8, 30, 3, rng) + Matrix(8, 30, -40.0);
  const auto refs = select_reference_locations(x0, 4, ReferencePolicy::QrPivot);
  const LrrModel lrr(x0, refs);

  Matrix drifted = x0;
  for (std::size_t i = 0; i < drifted.rows(); ++i) {
    const double offset = (i % 2 == 0 ? 1.0 : -1.0) * 3.0;
    for (std::size_t j = 0; j < drifted.cols(); ++j) drifted(i, j) += offset;
  }
  const Matrix pred = lrr.predict(drifted.select_columns(refs));
  EXPECT_LT(max_abs_diff(pred, drifted), 0.8);
}

TEST(Lrr, PredictionTracksRealisticDrift) {
  // On the simulated paper room, LRR prediction from 10 fresh reference
  // columns should reduce the error far below the raw staleness.
  const Scenario s = Scenario::paper_room(5);
  Rng rng(5);
  const Matrix x0 = s.collector().survey_all(0.0, rng);
  const auto refs = select_reference_locations(x0, 10, ReferencePolicy::QrPivot);
  const LrrModel lrr(x0, refs);

  const double t = 45.0;
  const Matrix truth = s.collector().ground_truth(t);
  const Matrix fresh_refs = s.collector().survey_grids(refs, t, rng);
  const Matrix pred = lrr.predict(fresh_refs);

  double stale_err = 0.0, pred_err = 0.0;
  const Matrix truth0 = s.collector().ground_truth(0.0);
  for (std::size_t i = 0; i < truth.rows(); ++i)
    for (std::size_t j = 0; j < truth.cols(); ++j) {
      stale_err += std::abs(truth0(i, j) - truth(i, j));
      pred_err += std::abs(pred(i, j) - truth(i, j));
    }
  EXPECT_LT(pred_err, stale_err * 0.8);
}

TEST(Lrr, RejectsBadArguments) {
  Rng rng(6);
  const Matrix x0 = random_gaussian(4, 10, rng);
  EXPECT_THROW(LrrModel(x0, {}), std::invalid_argument);
  EXPECT_THROW(LrrModel(x0, {10}), std::out_of_range);
  EXPECT_THROW(LrrModel(x0, {0}, 0.0), std::invalid_argument);
  EXPECT_THROW(LrrModel(Matrix{}, {0}), std::invalid_argument);
}

TEST(Lrr, PredictRejectsWrongColumnCount) {
  Rng rng(7);
  const Matrix x0 = random_gaussian(4, 10, rng);
  const LrrModel lrr(x0, {1, 2});
  const Matrix wrong(4, 3, 0.0);
  EXPECT_THROW(lrr.predict(wrong), std::invalid_argument);
}

TEST(LrrNuclear, FitsLowRankDataExactly) {
  Rng rng(20);
  const Matrix x0 = random_low_rank(8, 30, 3, rng);
  const auto refs = select_reference_locations(x0, 3, ReferencePolicy::QrPivot);
  LrrOptions opts;
  opts.solver = LrrSolver::NuclearNorm;
  const LrrModel lrr(x0, refs, opts);
  EXPECT_LT(lrr.training_residual(), 0.05);
  EXPECT_GE(lrr.solver_iterations(), 1u);
}

TEST(LrrNuclear, CorrelationHasLowerNuclearNormThanRidge) {
  // The whole point of the nuclear-norm objective: trade a little fit
  // for a lower-rank correlation matrix.
  const Scenario s = Scenario::paper_room(21);
  Rng rng(21);
  const Matrix x0 = s.collector().survey_all(0.0, rng);
  const auto refs = select_reference_locations(x0, 10, ReferencePolicy::QrPivot);

  const LrrModel ridge(x0, refs);
  LrrOptions opts;
  opts.solver = LrrSolver::NuclearNorm;
  opts.nuclear_lambda = 2.0;  // strong shrinkage for a clear effect
  const LrrModel nuclear(x0, refs, opts);

  const double ridge_norm = svd_decompose(ridge.correlation()).nuclear_norm();
  const double nuclear_norm = svd_decompose(nuclear.correlation()).nuclear_norm();
  EXPECT_LT(nuclear_norm, ridge_norm + 1e-9);
}

TEST(LrrNuclear, PredictionQualityComparableToRidge) {
  const Scenario s = Scenario::paper_room(22);
  Rng rng(22);
  const Matrix x0 = s.collector().survey_all(0.0, rng);
  const auto refs = select_reference_locations(x0, 10, ReferencePolicy::QrPivot);

  const LrrModel ridge(x0, refs);
  LrrOptions opts;
  opts.solver = LrrSolver::NuclearNorm;
  const LrrModel nuclear(x0, refs, opts);

  const double t = 45.0;
  const Matrix truth = s.collector().ground_truth(t);
  const Matrix fresh = s.collector().survey_grids(refs, t, rng);
  const Matrix pred_ridge = ridge.predict(fresh);
  const Matrix pred_nuclear = nuclear.predict(fresh);
  const double err_ridge = max_abs_diff(pred_ridge, truth);
  const double err_nuclear = max_abs_diff(pred_nuclear, truth);
  EXPECT_LT(err_nuclear, err_ridge * 1.5 + 2.0);
}

TEST(LrrNuclear, RejectsBadOptions) {
  Rng rng(23);
  const Matrix x0 = random_gaussian(4, 10, rng);
  LrrOptions opts;
  opts.solver = LrrSolver::NuclearNorm;
  opts.nuclear_lambda = 0.0;
  EXPECT_THROW(LrrModel(x0, {0, 1}, opts), std::invalid_argument);
  opts = LrrOptions{};
  opts.solver = LrrSolver::NuclearNorm;
  opts.max_iterations = 0;
  EXPECT_THROW(LrrModel(x0, {0, 1}, opts), std::invalid_argument);
}

TEST(Lrr, MoreReferencesNeverHurtTraining) {
  Rng rng(8);
  const Matrix x0 = random_gaussian(8, 40, rng);  // full-rank rows
  const auto refs4 = select_reference_locations(x0, 4, ReferencePolicy::QrPivot);
  const auto refs8 = select_reference_locations(x0, 8, ReferencePolicy::QrPivot);
  const LrrModel lrr4(x0, refs4);
  const LrrModel lrr8(x0, refs8);
  EXPECT_LE(lrr8.training_residual(), lrr4.training_residual() + 1e-9);
}

}  // namespace
}  // namespace tafloc
