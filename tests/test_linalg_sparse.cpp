#include "tafloc/linalg/sparse.h"

#include <gtest/gtest.h>

#include "tafloc/linalg/ops.h"
#include "tafloc/linalg/vector_ops.h"
#include "tafloc/util/rng.h"

namespace tafloc {
namespace {

SparseMatrix small_example() {
  // [ 1 0 2 ]
  // [ 0 0 0 ]
  // [ 3 4 0 ]
  return SparseMatrix(3, 3, {{0, 0, 1.0}, {0, 2, 2.0}, {2, 0, 3.0}, {2, 1, 4.0}});
}

TEST(SparseMatrix, DefaultIsEmpty) {
  SparseMatrix m;
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
  EXPECT_EQ(m.nnz(), 0u);
}

TEST(SparseMatrix, AtLookup) {
  const SparseMatrix m = small_example();
  EXPECT_DOUBLE_EQ(m.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(m.at(0, 2), 2.0);
  EXPECT_DOUBLE_EQ(m.at(2, 1), 4.0);
  EXPECT_DOUBLE_EQ(m.at(1, 1), 0.0);
  EXPECT_EQ(m.nnz(), 4u);
}

TEST(SparseMatrix, DuplicateTripletsAreSummed) {
  const SparseMatrix m(2, 2, {{0, 0, 1.0}, {0, 0, 2.5}, {1, 1, -1.0}});
  EXPECT_DOUBLE_EQ(m.at(0, 0), 3.5);
  EXPECT_EQ(m.nnz(), 2u);
}

TEST(SparseMatrix, RejectsOutOfRangeTriplets) {
  EXPECT_THROW(SparseMatrix(2, 2, {{2, 0, 1.0}}), std::out_of_range);
  EXPECT_THROW(SparseMatrix(2, 2, {{0, 2, 1.0}}), std::out_of_range);
}

TEST(SparseMatrix, MultiplyMatchesDense) {
  Rng rng(1);
  const Matrix dense = random_gaussian(7, 5, rng);
  const SparseMatrix sparse = SparseMatrix::from_dense(dense);
  Vector x(5);
  for (double& v : x) v = rng.normal();
  const Vector ys = sparse.multiply(x);
  const Vector yd = multiply(dense, x);
  EXPECT_LT(distance2(ys, yd), 1e-12);
}

TEST(SparseMatrix, MultiplyTransposedMatchesDense) {
  Rng rng(2);
  const Matrix dense = random_gaussian(6, 9, rng);
  const SparseMatrix sparse = SparseMatrix::from_dense(dense);
  Vector x(6);
  for (double& v : x) v = rng.normal();
  const Vector ys = sparse.multiply_transposed(x);
  const Vector yd = multiply_transposed(dense, x);
  EXPECT_LT(distance2(ys, yd), 1e-12);
}

TEST(SparseMatrix, MultiplyRejectsWrongLength) {
  const SparseMatrix m = small_example();
  const Vector bad(2, 1.0);
  EXPECT_THROW(m.multiply(bad), std::invalid_argument);
  EXPECT_THROW(m.multiply_transposed(bad), std::invalid_argument);
}

TEST(SparseMatrix, FromDenseRespectsTolerance) {
  const Matrix d = Matrix::from_rows({{1.0, 1e-13}, {0.0, -2.0}});
  const SparseMatrix m = SparseMatrix::from_dense(d, 1e-12);
  EXPECT_EQ(m.nnz(), 2u);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 0.0);
}

TEST(SparseMatrix, ToDenseRoundTrip) {
  Rng rng(3);
  Matrix dense = random_gaussian(5, 4, rng);
  // Make it actually sparse.
  for (std::size_t i = 0; i < dense.rows(); ++i)
    for (std::size_t j = 0; j < dense.cols(); ++j)
      if ((i + j) % 3 != 0) dense(i, j) = 0.0;
  const SparseMatrix sparse = SparseMatrix::from_dense(dense);
  EXPECT_LT(max_abs_diff(sparse.to_dense(), dense), 1e-15);
}

TEST(SparseMatrix, PruneDropsSmallEntries) {
  SparseMatrix m(2, 2, {{0, 0, 1.0}, {0, 1, 1e-14}, {1, 1, 2.0}});
  EXPECT_EQ(m.nnz(), 3u);
  m.prune(1e-12);
  EXPECT_EQ(m.nnz(), 2u);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(m.at(1, 1), 2.0);
}

TEST(SparseMatrix, RowSpansExposeCsrStructure) {
  const SparseMatrix m = small_example();
  const auto idx0 = m.row_indices(0);
  const auto val0 = m.row_values(0);
  ASSERT_EQ(idx0.size(), 2u);
  EXPECT_EQ(idx0[0], 0u);
  EXPECT_EQ(idx0[1], 2u);
  EXPECT_DOUBLE_EQ(val0[1], 2.0);
  EXPECT_EQ(m.row_indices(1).size(), 0u);
}

TEST(SparseMatrix, FrobeniusNormMatchesDense) {
  Rng rng(4);
  const Matrix dense = random_gaussian(4, 6, rng);
  const SparseMatrix sparse = SparseMatrix::from_dense(dense);
  EXPECT_NEAR(sparse.frobenius_norm(), dense.frobenius_norm(), 1e-12);
}

TEST(SparseMatrix, ColumnIndicesSortedWithinRows) {
  // Assembly from unsorted triplets must still produce sorted rows
  // (at() relies on binary search).
  const SparseMatrix m(1, 5, {{0, 3, 1.0}, {0, 0, 2.0}, {0, 4, 3.0}, {0, 1, 4.0}});
  const auto idx = m.row_indices(0);
  for (std::size_t k = 1; k < idx.size(); ++k) EXPECT_LT(idx[k - 1], idx[k]);
  EXPECT_DOUBLE_EQ(m.at(0, 3), 1.0);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 4.0);
}

}  // namespace
}  // namespace tafloc
