#include <gtest/gtest.h>

#include <cmath>

#include "tafloc/linalg/cholesky.h"
#include "tafloc/linalg/lu.h"
#include "tafloc/linalg/ops.h"
#include "tafloc/linalg/vector_ops.h"
#include "tafloc/util/rng.h"

namespace tafloc {
namespace {

/// Random SPD matrix A = G^T G + eps I.
Matrix random_spd(std::size_t n, Rng& rng) {
  const Matrix g = random_gaussian(n + 2, n, rng);
  Matrix a = gram_product(g, g);
  for (std::size_t i = 0; i < n; ++i) a(i, i) += 0.1;
  return a;
}

// ---------------- Cholesky ----------------

TEST(Cholesky, FactorReconstructs) {
  Rng rng(1);
  const Matrix a = random_spd(6, rng);
  const Matrix l = cholesky_factor(a);
  EXPECT_LT(max_abs_diff(outer_product(l, l), a), 1e-9);  // L L^T == A
}

TEST(Cholesky, FactorIsLowerTriangular) {
  Rng rng(2);
  const Matrix a = random_spd(5, rng);
  const Matrix l = cholesky_factor(a);
  for (std::size_t i = 0; i < 5; ++i)
    for (std::size_t j = i + 1; j < 5; ++j) EXPECT_DOUBLE_EQ(l(i, j), 0.0);
}

TEST(Cholesky, KnownFactor) {
  const Matrix a = Matrix::from_rows({{4.0, 2.0}, {2.0, 5.0}});
  const Matrix l = cholesky_factor(a);
  EXPECT_NEAR(l(0, 0), 2.0, 1e-12);
  EXPECT_NEAR(l(1, 0), 1.0, 1e-12);
  EXPECT_NEAR(l(1, 1), 2.0, 1e-12);
}

TEST(Cholesky, SolveRecoversSolution) {
  Rng rng(3);
  const Matrix a = random_spd(8, rng);
  Vector x_true(8);
  for (double& v : x_true) v = rng.normal();
  const Vector b = multiply(a, x_true);
  const Vector x = solve_spd(a, b);
  EXPECT_LT(distance2(x, x_true), 1e-7);
}

TEST(Cholesky, SolveMatrixColumns) {
  Rng rng(4);
  const Matrix a = random_spd(5, rng);
  const Matrix x_true = random_gaussian(5, 3, rng);
  const Matrix b = a * x_true;
  const Matrix x = cholesky_solve_matrix(cholesky_factor(a), b);
  EXPECT_LT(max_abs_diff(x, x_true), 1e-7);
}

TEST(Cholesky, RejectsNonSpd) {
  const Matrix a = Matrix::from_rows({{1.0, 2.0}, {2.0, 1.0}});  // indefinite
  EXPECT_THROW(cholesky_factor(a), std::domain_error);
}

TEST(Cholesky, RejectsNonSquare) {
  const Matrix a(2, 3);
  EXPECT_THROW(cholesky_factor(a), std::invalid_argument);
}

TEST(Cholesky, RejectsWrongRhsLength) {
  Rng rng(5);
  const Matrix a = random_spd(3, rng);
  const Matrix l = cholesky_factor(a);
  const std::vector<double> b{1.0, 2.0};
  EXPECT_THROW(cholesky_solve(l, b), std::invalid_argument);
}

TEST(Cholesky, IdentityFactorsToItself) {
  const Matrix id = Matrix::identity(4);
  EXPECT_LT(max_abs_diff(cholesky_factor(id), id), 1e-12);
}

// ---------------- LU ----------------

TEST(Lu, SolveRecoversSolution) {
  Rng rng(6);
  const Matrix a = random_gaussian(7, 7, rng);
  Vector x_true(7);
  for (double& v : x_true) v = rng.normal();
  const Vector b = multiply(a, x_true);
  const Vector x = LuDecomposition(a).solve(b);
  EXPECT_LT(distance2(x, x_true), 1e-8);
}

TEST(Lu, SolveLinearConvenience) {
  const Matrix a = Matrix::from_rows({{2.0, 1.0}, {1.0, 3.0}});
  const std::vector<double> b{5.0, 10.0};
  const Vector x = solve_linear(a, b);
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Lu, DeterminantKnown) {
  const Matrix a = Matrix::from_rows({{1.0, 2.0}, {3.0, 4.0}});
  EXPECT_NEAR(LuDecomposition(a).determinant(), -2.0, 1e-12);
}

TEST(Lu, DeterminantOfIdentity) {
  EXPECT_NEAR(LuDecomposition(Matrix::identity(5)).determinant(), 1.0, 1e-12);
}

TEST(Lu, DeterminantSignUnderRowSwapNeed) {
  // Requires pivoting (zero leading element); det([[0,1],[1,0]]) = -1.
  const Matrix a = Matrix::from_rows({{0.0, 1.0}, {1.0, 0.0}});
  EXPECT_NEAR(LuDecomposition(a).determinant(), -1.0, 1e-12);
}

TEST(Lu, InverseTimesMatrixIsIdentity) {
  Rng rng(7);
  const Matrix a = random_gaussian(6, 6, rng);
  const Matrix inv = LuDecomposition(a).inverse();
  EXPECT_LT(max_abs_diff(a * inv, Matrix::identity(6)), 1e-8);
  EXPECT_LT(max_abs_diff(inv * a, Matrix::identity(6)), 1e-8);
}

TEST(Lu, SolveMatrixMultipleRhs) {
  Rng rng(8);
  const Matrix a = random_gaussian(5, 5, rng);
  const Matrix x_true = random_gaussian(5, 4, rng);
  const Matrix b = a * x_true;
  EXPECT_LT(max_abs_diff(LuDecomposition(a).solve_matrix(b), x_true), 1e-8);
}

TEST(Lu, RejectsSingular) {
  const Matrix a = Matrix::from_rows({{1.0, 2.0}, {2.0, 4.0}});
  EXPECT_THROW(LuDecomposition{a}, std::domain_error);
}

TEST(Lu, RejectsNonSquare) {
  const Matrix a(2, 3);
  EXPECT_THROW(LuDecomposition{a}, std::invalid_argument);
}

TEST(Lu, AgreesWithCholeskyOnSpd) {
  Rng rng(9);
  const Matrix a = random_spd(6, rng);
  Vector b(6);
  for (double& v : b) v = rng.normal();
  const Vector x_lu = LuDecomposition(a).solve(b);
  const Vector x_chol = solve_spd(a, b);
  EXPECT_LT(distance2(x_lu, x_chol), 1e-8);
}

TEST(Lu, DimensionAccessor) {
  EXPECT_EQ(LuDecomposition(Matrix::identity(3)).dimension(), 3u);
}

}  // namespace
}  // namespace tafloc
