// Storage layer: codec bounds, frame checksums, snapshot generations
// with fallback, WAL append/replay with torn tails, kill points.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>

#include "tafloc/storage/codec.h"
#include "tafloc/storage/kill_point.h"
#include "tafloc/storage/record.h"
#include "tafloc/storage/snapshot.h"
#include "tafloc/storage/wal.h"
#include "tafloc/util/crc32c.h"

namespace tafloc::storage {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  explicit TempDir(const std::string& tag)
      : path_(fs::temp_directory_path() /
              ("tafloc_storage_" + tag + "_" + std::to_string(::getpid()))) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  std::string str() const { return path_.string(); }
  fs::path path() const { return path_; }

 private:
  fs::path path_;
};

std::string read_all(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
}

void write_all(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// -- CRC32C --

TEST(Crc32c, MatchesKnownVectors) {
  // RFC 3720 test vector: 32 zero bytes.
  std::uint8_t zeros[32] = {};
  EXPECT_EQ(crc32c(zeros, sizeof(zeros)), 0x8a9136aaU);
  const std::string numbers = "123456789";
  EXPECT_EQ(crc32c(numbers.data(), numbers.size()), 0xe3069283U);
}

TEST(Crc32c, SeedChainsIncrementally) {
  const std::string all = "hello, world";
  const std::uint32_t whole = crc32c(all.data(), all.size());
  const std::uint32_t part = crc32c(all.data() + 5, all.size() - 5, crc32c(all.data(), 5));
  EXPECT_EQ(whole, part);
}

// -- codec --

TEST(Codec, RoundTripsScalarsAndSpans) {
  ByteWriter w;
  w.put_u8(7);
  w.put_u32(0xdeadbeefU);
  w.put_u64(1ULL << 40);
  w.put_f64(-0.0);
  const double doubles[] = {1.5, std::nan("7"), -2.0};
  w.put_f64_span(doubles);
  const std::size_t sizes[] = {0, 9, 1u << 20};
  w.put_size_span(sizes);

  ByteReader r(w.bytes());
  EXPECT_EQ(r.get_u8(), 7);
  EXPECT_EQ(r.get_u32(), 0xdeadbeefU);
  EXPECT_EQ(r.get_u64(), 1ULL << 40);
  EXPECT_EQ(std::signbit(r.get_f64()), true);
  const auto back = r.get_f64_vector();
  ASSERT_EQ(back.size(), 3u);
  EXPECT_EQ(back[0], 1.5);
  EXPECT_TRUE(std::isnan(back[1]));  // NaN payload bits survive bit-exact.
  const auto sizes_back = r.get_size_vector();
  EXPECT_EQ(sizes_back[2], 1u << 20);
  EXPECT_TRUE(r.exhausted());
}

TEST(Codec, TruncatedReadThrowsNotCrashes) {
  ByteWriter w;
  w.put_u64(123);
  const std::string bytes = w.take();
  ByteReader r(std::string_view(bytes).substr(0, 3));
  EXPECT_THROW(r.get_u64(), std::runtime_error);
}

TEST(Codec, AbsurdElementCountRejectedBeforeAllocation) {
  // A length prefix claiming 2^60 doubles must throw std::runtime_error
  // up front, never reach the allocator (bad_alloc / OOM-kill).
  ByteWriter w;
  w.put_u64(1ULL << 60);
  const std::string bytes = w.take();
  ByteReader r(bytes);
  EXPECT_THROW(r.get_f64_vector(), std::runtime_error);
}

TEST(Codec, ExpectExhaustedFlagsTrailingGarbage) {
  ByteWriter w;
  w.put_u32(1);
  w.put_u8(0);
  ByteReader r(w.bytes());
  r.get_u32();
  EXPECT_THROW(r.expect_exhausted("test payload"), std::runtime_error);
}

// -- frames --

TEST(Record, FrameRoundTrip) {
  const std::string bytes = encode_frame(42, 7, "payload bytes");
  std::size_t pos = 0;
  Frame frame;
  std::string error;
  EXPECT_EQ(decode_frame(bytes, pos, frame, &error), FrameStatus::kOk);
  EXPECT_EQ(frame.type, 42u);
  EXPECT_EQ(frame.seq, 7u);
  EXPECT_EQ(frame.payload, "payload bytes");
  EXPECT_EQ(pos, bytes.size());
  EXPECT_EQ(decode_frame(bytes, pos, frame, &error), FrameStatus::kEof);
}

TEST(Record, TruncatedFrameIsTornNotCorrupt) {
  const std::string bytes = encode_frame(1, 1, "0123456789");
  for (std::size_t keep : {1ul, 7ul, bytes.size() - 1}) {
    std::size_t pos = 0;
    Frame frame;
    EXPECT_EQ(decode_frame(bytes.substr(0, keep), pos, frame, nullptr), FrameStatus::kTorn)
        << "keep=" << keep;
  }
}

TEST(Record, EveryFlippedBitIsDetected) {
  const std::string bytes = encode_frame(3, 99, "checksum me");
  for (std::size_t byte = 0; byte < bytes.size(); ++byte) {
    std::string bad = bytes;
    bad[byte] = static_cast<char>(bad[byte] ^ 0x01);
    std::size_t pos = 0;
    Frame frame;
    const FrameStatus status = decode_frame(bad, pos, frame, nullptr);
    EXPECT_NE(status, FrameStatus::kOk) << "flip at byte " << byte;
  }
}

TEST(Record, AbsurdLengthIsCorrupt) {
  std::string bytes(24, '\0');
  const std::uint32_t len = 0x7fffffffU;  // within buffer claim impossible.
  std::memcpy(bytes.data(), &len, 4);
  std::size_t pos = 0;
  Frame frame;
  EXPECT_EQ(decode_frame(bytes, pos, frame, nullptr), FrameStatus::kCorrupt);
}

TEST(Record, AtomicWriteFileRoundTrips) {
  TempDir dir("atomic");
  const std::string path = dir.str() + "/file.bin";
  atomic_write_file(path, "first");
  EXPECT_EQ(read_all(path), "first");
  atomic_write_file(path, "second generation");  // replace, no partial state.
  EXPECT_EQ(read_all(path), "second generation");
  EXPECT_FALSE(fs::exists(path + ".tmp"));
}

// -- snapshots --

TEST(Snapshot, CommitLoadRoundTrip) {
  TempDir dir("snap_rt");
  SnapshotStore store(dir.str());
  store.commit({1, 10, "gen one"});
  auto loaded = store.load_latest();
  ASSERT_TRUE(loaded.snapshot.has_value());
  EXPECT_EQ(loaded.snapshot->generation, 1u);
  EXPECT_EQ(loaded.snapshot->sequence, 10u);
  EXPECT_EQ(loaded.snapshot->payload, "gen one");
  EXPECT_FALSE(loaded.fell_back);

  store.commit({2, 25, "gen two"});
  loaded = store.load_latest();
  ASSERT_TRUE(loaded.snapshot.has_value());
  EXPECT_EQ(loaded.snapshot->generation, 2u);
  EXPECT_EQ(loaded.snapshot->payload, "gen two");
  // Both slots live: generation 1 survives as the fallback.
  EXPECT_TRUE(fs::exists(store.slot_path(0)));
  EXPECT_TRUE(fs::exists(store.slot_path(1)));
}

TEST(Snapshot, CorruptNewestFallsBackOneGeneration) {
  TempDir dir("snap_fb");
  SnapshotStore store(dir.str());
  store.commit({1, 10, "good old"});
  store.commit({2, 20, "bad new"});
  std::string bytes = read_all(store.slot_path(0));  // gen 2 lives in slot 0.
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x40);
  write_all(store.slot_path(0), bytes);

  const auto loaded = store.load_latest();
  ASSERT_TRUE(loaded.snapshot.has_value());
  EXPECT_EQ(loaded.snapshot->generation, 1u);
  EXPECT_EQ(loaded.snapshot->payload, "good old");
  EXPECT_TRUE(loaded.fell_back);
  EXPECT_EQ(loaded.slots_rejected, 1u);
  ASSERT_EQ(loaded.errors.size(), 1u);
}

TEST(Snapshot, AllSlotsCorruptMeansNoSnapshotNeverGarbage) {
  TempDir dir("snap_dead");
  SnapshotStore store(dir.str());
  store.commit({1, 1, "a"});
  store.commit({2, 2, "b"});
  for (unsigned slot = 0; slot < 2; ++slot)
    write_all(store.slot_path(slot), std::string(64, '\0'));  // zero-page both.
  const auto loaded = store.load_latest();
  EXPECT_FALSE(loaded.snapshot.has_value());
  EXPECT_TRUE(loaded.fell_back);
  EXPECT_EQ(loaded.slots_rejected, 2u);
}

TEST(Snapshot, TruncatedSlotRejected) {
  TempDir dir("snap_trunc");
  SnapshotStore store(dir.str());
  store.commit({1, 1, std::string(256, 'x')});
  const std::string path = store.slot_path(1);
  const std::string bytes = read_all(path);
  write_all(path, bytes.substr(0, bytes.size() / 3));
  EXPECT_FALSE(store.load_latest().snapshot.has_value());
}

TEST(Snapshot, MissingDirectoryLoadsEmpty) {
  SnapshotStore store("/nonexistent/tafloc/zone");
  const auto loaded = store.load_latest();
  EXPECT_FALSE(loaded.snapshot.has_value());
  EXPECT_FALSE(loaded.fell_back);
  EXPECT_EQ(loaded.slots_rejected, 0u);
}

// -- WAL --

TEST(Wal, AppendReadRoundTripAcrossReopen) {
  TempDir dir("wal_rt");
  const std::string path = dir.str() + "/wal-1.log";
  {
    WalWriter wal(path, 1, /*fsync_every=*/2);
    EXPECT_EQ(wal.append(7, "one"), 1u);
    EXPECT_EQ(wal.append(8, "two"), 2u);
    EXPECT_GE(wal.fsyncs(), 1u);  // batched: every 2 appends.
  }
  {
    WalWriter wal(path, 3);  // reopen appends, never rewrites.
    EXPECT_EQ(wal.append(9, "three"), 3u);
  }
  const WalReadResult result = read_wal(path);
  EXPECT_FALSE(result.torn_tail);
  EXPECT_FALSE(result.corrupt);
  EXPECT_FALSE(result.missing);
  ASSERT_EQ(result.records.size(), 3u);
  EXPECT_EQ(result.records[0].payload, "one");
  EXPECT_EQ(result.records[2].seq, 3u);
  EXPECT_EQ(result.records[2].type, 9u);
}

TEST(Wal, MissingFileIsCleanEmptyLog) {
  const WalReadResult result = read_wal("/nonexistent/wal-1.log");
  EXPECT_TRUE(result.missing);
  EXPECT_TRUE(result.records.empty());
  EXPECT_FALSE(result.corrupt);
}

TEST(Wal, TornTailDroppedAndFlagged) {
  TempDir dir("wal_torn");
  const std::string path = dir.str() + "/wal-1.log";
  {
    WalWriter wal(path, 1, 1);
    wal.append(1, "intact record");
    wal.append(1, "doomed record");
  }
  const std::string bytes = read_all(path);
  write_all(path, bytes.substr(0, bytes.size() - 5));
  const WalReadResult result = read_wal(path);
  EXPECT_TRUE(result.torn_tail);
  EXPECT_FALSE(result.corrupt);
  ASSERT_EQ(result.records.size(), 1u);
  EXPECT_EQ(result.records[0].payload, "intact record");
}

TEST(Wal, MidFileCorruptionStopsReplayAtLastGoodRecord) {
  TempDir dir("wal_corrupt");
  const std::string path = dir.str() + "/wal-1.log";
  {
    WalWriter wal(path, 1, 1);
    wal.append(1, std::string(64, 'a'));
    wal.append(1, std::string(64, 'b'));
    wal.append(1, std::string(64, 'c'));
  }
  std::string bytes = read_all(path);
  const std::size_t mid = bytes.size() / 2;  // inside record two.
  bytes[mid] = static_cast<char>(bytes[mid] ^ 0x08);
  write_all(path, bytes);
  const WalReadResult result = read_wal(path);
  EXPECT_TRUE(result.corrupt);
  ASSERT_EQ(result.records.size(), 1u);  // only the record before the damage.
  EXPECT_EQ(result.records[0].payload, std::string(64, 'a'));
}

TEST(Wal, BadMagicIsCorrupt) {
  TempDir dir("wal_magic");
  const std::string path = dir.str() + "/wal-1.log";
  write_all(path, "NOTAWAL!" + encode_frame(1, 1, "x"));
  const WalReadResult result = read_wal(path);
  EXPECT_TRUE(result.corrupt);
  EXPECT_TRUE(result.records.empty());
}

// -- kill points --

TEST(KillPoint, NamesRoundTrip) {
  for (KillPoint p : {KillPoint::kSnapshotTempWritten, KillPoint::kSnapshotBeforeRename,
                      KillPoint::kSnapshotAfterRename, KillPoint::kWalMidAppend,
                      KillPoint::kWalAfterAppend}) {
    EXPECT_EQ(kill_point_from_name(kill_point_name(p)), p);
  }
  EXPECT_THROW(kill_point_from_name("no-such-point"), std::invalid_argument);
}

TEST(KillPointDeathTest, ArmedPointExitsWithKillCode) {
  EXPECT_EXIT(
      {
        arm_kill_point(KillPoint::kWalAfterAppend, 1);
        maybe_kill(KillPoint::kWalAfterAppend);
      },
      ::testing::ExitedWithCode(kKillExitCode), "");
}

TEST(KillPointDeathTest, HitCountDelaysTheKill) {
  EXPECT_EXIT(
      {
        arm_kill_point(KillPoint::kWalMidAppend, 3);
        maybe_kill(KillPoint::kWalMidAppend);
        maybe_kill(KillPoint::kWalAfterAppend);  // other points never count.
        maybe_kill(KillPoint::kWalMidAppend);
        std::fprintf(stderr, "still alive\n");
        maybe_kill(KillPoint::kWalMidAppend);
      },
      ::testing::ExitedWithCode(kKillExitCode), "still alive");
}

TEST(KillPoint, DisarmedIsANoOp) {
  disarm_kill_point();
  maybe_kill(KillPoint::kSnapshotBeforeRename);  // must not exit.
  arm_kill_point(KillPoint::kSnapshotBeforeRename, 5);
  disarm_kill_point();
  maybe_kill(KillPoint::kSnapshotBeforeRename);
  SUCCEED();
}

}  // namespace
}  // namespace tafloc::storage
