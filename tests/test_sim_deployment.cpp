#include "tafloc/sim/deployment.h"

#include <gtest/gtest.h>

#include <cmath>

#include "tafloc/rf/channel.h"

namespace tafloc {
namespace {

TEST(Deployment, PaperRoomMatchesFig2) {
  const Deployment d = Deployment::paper_room();
  EXPECT_EQ(d.num_links(), 10u);
  EXPECT_EQ(d.num_grids(), 96u);
  EXPECT_DOUBLE_EQ(d.grid().cell_size(), 0.6);
}

TEST(Deployment, PerimeterMixesOrientations) {
  const Deployment d = Deployment::perimeter(7.2, 4.8, 0.6, 10);
  std::size_t horizontal = 0, vertical = 0;
  for (std::size_t i = 0; i < d.num_links(); ++i) {
    if (d.link_is_horizontal(i)) {
      ++horizontal;
    } else {
      ++vertical;
    }
  }
  EXPECT_EQ(horizontal, 5u);
  EXPECT_EQ(vertical, 5u);
}

TEST(Deployment, PerimeterListsHorizontalsFirst) {
  const Deployment d = Deployment::perimeter(6.0, 6.0, 0.6, 7);  // 4 h + 3 v
  for (std::size_t i = 0; i < 4; ++i) EXPECT_TRUE(d.link_is_horizontal(i));
  for (std::size_t i = 4; i < 7; ++i) EXPECT_FALSE(d.link_is_horizontal(i));
}

TEST(Deployment, PerimeterLinksSpanTheArea) {
  const Deployment d = Deployment::perimeter(6.0, 4.8, 0.6, 8);
  for (std::size_t i = 0; i < d.num_links(); ++i) {
    const Segment& l = d.links()[i];
    if (d.link_is_horizontal(i)) {
      EXPECT_LE(l.a.x, 0.0);
      EXPECT_GE(l.b.x, 6.0);
    } else {
      EXPECT_LE(l.a.y, 0.0);
      EXPECT_GE(l.b.y, 4.8);
    }
  }
}

TEST(Deployment, TwoSidedLinksSpanTheArea) {
  const Deployment d = Deployment::two_sided(6.0, 6.0, 0.6, 10, 0.3);
  for (const Segment& l : d.links()) {
    EXPECT_LE(l.a.x, 0.0);
    EXPECT_GE(l.b.x, 6.0);
    EXPECT_DOUBLE_EQ(l.a.y, l.b.y);  // horizontal
  }
}

TEST(Deployment, TwoSidedLinksEvenlySpaced) {
  const Deployment d = Deployment::two_sided(6.0, 6.0, 0.6, 10);
  const double spacing = d.links()[1].a.y - d.links()[0].a.y;
  for (std::size_t i = 1; i < d.num_links(); ++i) {
    EXPECT_NEAR(d.links()[i].a.y - d.links()[i - 1].a.y, spacing, 1e-12);
  }
  EXPECT_NEAR(spacing, 0.6, 1e-12);
}

TEST(Deployment, LinksCoverEveryGridRowBand) {
  // Every grid cell must be within one cell size of some link (the
  // similarity property needs nearby links everywhere).
  const Deployment d = Deployment::paper_room();
  for (std::size_t j = 0; j < d.num_grids(); ++j) {
    const Point2 c = d.grid().center(j);
    double best = 1e9;
    for (const Segment& l : d.links()) best = std::min(best, point_segment_distance(c, l));
    EXPECT_LE(best, 0.6);
  }
}

TEST(Deployment, SquareAreaLinkDensityMatchesPaper) {
  // 6 m edge -> 10 links (paper's density: one link per 0.6 m of edge).
  EXPECT_EQ(Deployment::square_area(6.0).num_links(), 10u);
  EXPECT_EQ(Deployment::square_area(36.0).num_links(), 60u);
  EXPECT_EQ(Deployment::square_area(6.0).num_grids(), 100u);
  EXPECT_EQ(Deployment::square_area(36.0).num_grids(), 3600u);
}

TEST(Deployment, NearestLinkPicksClosest) {
  const Deployment d = Deployment::two_sided(6.0, 6.0, 0.6, 3);
  // Links at y = 1, 3, 5.
  EXPECT_EQ(d.nearest_link({3.0, 0.9}), 0u);
  EXPECT_EQ(d.nearest_link({3.0, 3.1}), 1u);
  EXPECT_EQ(d.nearest_link({3.0, 5.4}), 2u);
}

TEST(Deployment, RejectsTooFewLinks) {
  EXPECT_THROW(Deployment::two_sided(6.0, 6.0, 0.6, 1), std::invalid_argument);
}

TEST(Deployment, RejectsNegativeMargin) {
  EXPECT_THROW(Deployment::two_sided(6.0, 6.0, 0.6, 4, -0.1), std::invalid_argument);
}

TEST(Deployment, RejectsTinySquare) {
  EXPECT_THROW(Deployment::square_area(0.6), std::invalid_argument);
}

TEST(Deployment, DiversityDuplicatesLinksInOrder) {
  const Deployment base = Deployment::paper_room();
  const Deployment div = Deployment::with_diversity(base, 3);
  EXPECT_EQ(div.num_links(), 30u);
  EXPECT_EQ(div.num_grids(), base.num_grids());
  for (std::size_t i = 0; i < base.num_links(); ++i) {
    for (std::size_t c = 0; c < 3; ++c) {
      const Segment& orig = base.links()[i];
      const Segment& copy = div.links()[i * 3 + c];
      EXPECT_EQ(copy.a, orig.a);
      EXPECT_EQ(copy.b, orig.b);
    }
  }
}

TEST(Deployment, DiversityOneCopyIsIdentity) {
  const Deployment base = Deployment::paper_room();
  const Deployment same = Deployment::with_diversity(base, 1);
  EXPECT_EQ(same.num_links(), base.num_links());
}

TEST(Deployment, DiversityRejectsZeroCopies) {
  EXPECT_THROW(Deployment::with_diversity(Deployment::paper_room(), 0),
               std::invalid_argument);
}

TEST(Deployment, DiversityCopiesGetIndependentChannelDraws) {
  // The channel seeds per-link multipath; duplicated links must fade
  // differently (that is what frequency diversity buys).
  const Deployment div = Deployment::with_diversity(Deployment::paper_room(), 2);
  const Channel ch(div.links(), ChannelConfig{}, 3);
  const Point2 target{3.6, 2.4};
  bool any_difference = false;
  for (std::size_t i = 0; i < div.num_links(); i += 2) {
    if (std::abs(ch.target_response_db(i, target, 0.0) -
                 ch.target_response_db(i + 1, target, 0.0)) > 0.05)
      any_difference = true;
  }
  EXPECT_TRUE(any_difference);
}

TEST(Deployment, ExplicitConstructorValidatesLinks) {
  GridMap g(1.2, 1.2, 0.6);
  EXPECT_THROW(Deployment(g, {}), std::invalid_argument);
  std::vector<Segment> degenerate{Segment{{0.0, 0.0}, {0.0, 0.0}}};
  EXPECT_THROW(Deployment(g, std::move(degenerate)), std::invalid_argument);
}

}  // namespace
}  // namespace tafloc
