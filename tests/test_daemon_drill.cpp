// End-to-end observability drill (ISSUE PR 9 acceptance scenario):
// boot a two-zone daemon on a real socket, push 100+ localize queries
// with every 25th forced slow by fault injection, then verify from the
// *outside* (wire packets, as taflocctl would see them) and the
// *inside* (the zone's trace ring) that
//   - `top`'s inputs show nonzero QPS / p50 / p95 / p99,
//   - the slow-query log holds exactly the forced-slow requests,
//   - sampled traces carry per-stage timings whose sum ~= the latency,
//   - SLO accounting burns the error budget and flags degraded-slo,
//   - a version-skewed packet mid-stream corrupts nothing.
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "tafloc/daemon/daemon.h"
#include "tafloc/sim/scenario.h"
#include "tafloc/util/rng.h"

namespace tafloc::daemon {
namespace {

namespace fs = std::filesystem;

constexpr int kQueries = 100;
constexpr int kFaultEvery = 25;     // ordinals 25/50/75/100 -> seqs 24/49/74/99.
constexpr double kFaultMs = 60.0;   // far above...
constexpr double kSlowMs = 20.0;    // ...the slow threshold and
constexpr double kDeadlineMs = 20.0;  // the SLO deadline.

class DrillClient {
 public:
  explicit DrillClient(const std::string& path) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) throw std::runtime_error("socket() failed");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(fd_);
      throw std::runtime_error("connect() failed: " + path);
    }
  }
  ~DrillClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  void send(const std::string& bytes) {
    std::size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n = ::write(fd_, bytes.data() + off, bytes.size() - off);
      ASSERT_GT(n, 0);
      off += static_cast<std::size_t>(n);
    }
  }

  bool recv_frame(storage::Frame& out) {
    while (true) {
      ExtractResult r = extract_packet(buffer_, out);
      if (r == ExtractResult::kPacket) return true;
      if (r == ExtractResult::kCorrupt) return false;
      char chunk[4096];
      const ssize_t n = ::read(fd_, chunk, sizeof chunk);
      if (n <= 0) return false;
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

int count_lines(const std::string& text) {
  int lines = 0;
  for (char c : text) lines += c == '\n';
  return lines;
}

TEST(DaemonDrill, HundredQueryTraceSloAndSlowLogDrill) {
  const std::string socket_path =
      (fs::temp_directory_path() / ("tafloc_drill_" + std::to_string(::getpid()))).string();
  std::istringstream in(
      "socket = " + socket_path + "\n" +
      "[zone office]\n"
      "seed = 21\n"
      "trace_sample_every = 1\n"
      "trace_ring_capacity = 256\n"
      "slow_query_ms = " + std::to_string(kSlowMs) + "\n" +
      "slow_log_capacity = 16\n"
      "slo_deadline_ms = " + std::to_string(kDeadlineMs) + "\n" +
      "slo_target = 0.99\n"
      "fault_slow_every = " + std::to_string(kFaultEvery) + "\n" +
      "fault_slow_ms = " + std::to_string(kFaultMs) + "\n" +
      "[zone lab]\n"
      "seed = 22\n");
  const DaemonConfig config = DaemonConfig::parse(in);

  EventLoop loop;
  ZoneManager zones(config);
  ASSERT_EQ(zones.start_all(), 2u);
  ControlServer server(zones, loop, socket_path);
  server.open();
  std::thread loop_thread([&loop] { loop.run(50); });

  // Fresh noise per query: a frozen reading would (correctly) trip the
  // link-health tracker's stuck-link detector and kill the links.
  Scenario scenario = Scenario::paper_room(21);
  Rng rng(5);
  std::vector<Vector> queries;
  queries.reserve(kQueries);
  for (int i = 0; i < kQueries; ++i) {
    queries.push_back(scenario.collector().observe({2.0, 2.0}, 0.01 * i, rng));
  }

  {
    DrillClient client(socket_path);
    storage::Frame frame;
    for (int i = 1; i <= kQueries; ++i) {
      LocalizeRequest req{"office", queries[static_cast<std::size_t>(i - 1)]};
      req.trace_id = static_cast<std::uint64_t>(1000 + i);
      client.send(req.encode(static_cast<std::uint64_t>(i)));
      ASSERT_TRUE(client.recv_frame(frame)) << "query " << i;
      const LocalizeResponse res = LocalizeResponse::decode(frame);
      ASSERT_EQ(res.status, WireStatus::kOk) << "query " << i;
      EXPECT_TRUE(res.served);

      if (i == kQueries / 2) {
        // Mid-stream version skew: a v2 localize payload must bounce as
        // kBadRequest without disturbing the connection or any zone.
        storage::ByteWriter old_payload;
        old_payload.put_u32(kWireVersion - 1);
        const std::string zone = "office";
        old_payload.put_u8_span(
            {reinterpret_cast<const std::uint8_t*>(zone.data()), zone.size()});
        old_payload.put_f64_span(queries[0]);
        client.send(storage::encode_frame(
            static_cast<std::uint32_t>(PacketType::kLocalizeRequest), 9000,
            old_payload.bytes()));
        ASSERT_TRUE(client.recv_frame(frame));
        ASSERT_EQ(frame.type, static_cast<std::uint32_t>(PacketType::kError));
        const ErrorResponse err = ErrorResponse::decode(frame);
        EXPECT_EQ(err.status, WireStatus::kBadRequest);
        EXPECT_NE(err.message.find("version"), std::string::npos) << err.message;
      }
    }

    // ---- `taflocctl top` inputs: metrics + status over the wire.
    client.send(MetricsRequest{""}.encode(9001));
    ASSERT_TRUE(client.recv_frame(frame));
    const MetricsResponse metrics = MetricsResponse::decode(frame);
    ASSERT_EQ(metrics.status, WireStatus::kOk);
    ASSERT_EQ(metrics.zones.size(), 2u);
    const ZoneMetrics* office = nullptr;
    for (const ZoneMetrics& m : metrics.zones) {
      if (m.zone == "office") office = &m;
    }
    ASSERT_NE(office, nullptr);
    EXPECT_EQ(office->state, "serving");
    const WireHistogram* latency = nullptr;
    for (const WireHistogram& h : office->histograms) {
      if (h.name == "zone.request_seconds") latency = &h;
    }
    ASSERT_NE(latency, nullptr);
    EXPECT_EQ(latency->count, static_cast<std::uint64_t>(kQueries));
    EXPECT_GT(latency->p50, 0.0);
    EXPECT_LE(latency->p50, latency->p95);
    EXPECT_LE(latency->p95, latency->p99);
    // Every 25th of 100 queries slept 60 ms, so p99 sees the faults.
    EXPECT_GE(latency->p99, kFaultMs * 1e-3);
    ASSERT_GT(office->uptime_ns, 0u);
    const double qps =
        static_cast<double>(latency->count) / (static_cast<double>(office->uptime_ns) * 1e-9);
    EXPECT_GT(qps, 0.0);

    client.send(StatusRequest{"office"}.encode(9002));
    ASSERT_TRUE(client.recv_frame(frame));
    const StatusResponse status = StatusResponse::decode(frame);
    ASSERT_EQ(status.zones.size(), 1u);
    const ZoneStatus& z = status.zones[0];
    EXPECT_EQ(z.queries, static_cast<std::uint64_t>(kQueries));
    EXPECT_EQ(z.slo_violated, 4u);  // exactly the fault-injected ordinals.
    EXPECT_EQ(z.slo_ok, static_cast<std::uint64_t>(kQueries) - 4u);
    // Budget: 100 * (1 - 0.99) - 4 violations = -3 -> degraded-slo.
    EXPECT_NEAR(z.slo_budget_remaining, -3.0, 1e-6);
    EXPECT_TRUE(z.slo_degraded);

    // ---- `taflocctl trace --slow`: the forced-slow requests, exactly.
    client.send(TraceRequest{"office", 0, true}.encode(9003));
    ASSERT_TRUE(client.recv_frame(frame));
    const TraceResponse slow = TraceResponse::decode(frame);
    ASSERT_EQ(slow.status, WireStatus::kOk);
    EXPECT_EQ(slow.total_recorded, 4u);
    EXPECT_EQ(slow.dropped, 0u);
    EXPECT_EQ(count_lines(slow.jsonl), 4);
    std::istringstream slow_lines(slow.jsonl);
    std::string line;
    while (std::getline(slow_lines, line)) {
      ASSERT_FALSE(line.empty());
      EXPECT_EQ(line.front(), '{');
      EXPECT_EQ(line.back(), '}');
      EXPECT_NE(line.find("\"type\":\"trace\""), std::string::npos) << line;
      EXPECT_NE(line.find("\"fault_injected\":true"), std::string::npos) << line;
      EXPECT_NE(line.find("\"slow\":true"), std::string::npos) << line;
      EXPECT_NE(line.find("\"name\":\"zone.fault.delay\""), std::string::npos) << line;
    }

    // ---- sampled traces over the wire parse and carry stages.
    client.send(TraceRequest{"office", 8, false}.encode(9004));
    ASSERT_TRUE(client.recv_frame(frame));
    const TraceResponse ring = TraceResponse::decode(frame);
    ASSERT_EQ(ring.status, WireStatus::kOk);
    EXPECT_EQ(ring.total_recorded, static_cast<std::uint64_t>(kQueries));
    EXPECT_EQ(count_lines(ring.jsonl), 8);
    EXPECT_NE(ring.jsonl.find("\"name\":\"zone.serve\""), std::string::npos);
  }

  // ---- inside view: the trace ring agrees with itself.  Sum of the
  // top-level stage durations must account for (almost all of) each
  // request's total latency; the slack absorbs scope bookkeeping, not
  // missing stages.
  const Zone* office_zone = zones.find("office");
  ASSERT_NE(office_zone, nullptr);
  const std::vector<TraceRecord> records = office_zone->tracer().ring().snapshot();
  ASSERT_EQ(records.size(), static_cast<std::size_t>(kQueries));
  constexpr std::uint64_t kSlackNs = 10'000'000;  // 10 ms for CI scheduling.
  for (const TraceRecord& r : records) {
    std::uint64_t depth0_ns = 0;
    for (std::uint32_t s = 0; s < r.stage_count; ++s) {
      if (r.stages[s].depth == 0) depth0_ns += r.stages[s].duration_ns;
    }
    EXPECT_GT(r.stage_count, 0u) << "seq " << r.seq;
    EXPECT_LE(depth0_ns, r.total_ns) << "seq " << r.seq;
    EXPECT_LE(r.total_ns - depth0_ns, kSlackNs) << "seq " << r.seq;
    EXPECT_EQ(r.trace_id, 1000u + r.seq + 1u);  // client ids round-tripped.
  }

  std::set<std::uint64_t> slow_seqs;
  for (const TraceRecord& r : office_zone->tracer().slow_log().entries()) {
    slow_seqs.insert(r.seq);
  }
  EXPECT_EQ(slow_seqs, (std::set<std::uint64_t>{24, 49, 74, 99}));
  EXPECT_EQ(office_zone->tracer().slow_log().dropped(), 0u);

  // The untraced lab zone stayed serving and recorded nothing.
  const Zone* lab_zone = zones.find("lab");
  ASSERT_NE(lab_zone, nullptr);
  EXPECT_EQ(lab_zone->state(), ZoneState::kServing);
  EXPECT_EQ(lab_zone->tracer().ring().pushed(), 0u);

  loop.post([&] {
    server.close();
    loop.stop();
  });
  loop_thread.join();
  zones.drain_all();
  fs::remove(socket_path);
}

}  // namespace
}  // namespace tafloc::daemon
