#include "tafloc/baselines/rti.h"

#include <gtest/gtest.h>

#include "tafloc/sim/scenario.h"
#include "tafloc/sim/trace.h"

namespace tafloc {
namespace {

class RtiTest : public ::testing::Test {
 protected:
  RtiTest() : scenario_(Scenario::paper_room(31)), rng_(31) {
    ambient_ = scenario_.collector().ambient_scan(0.0, rng_);
  }
  Scenario scenario_;
  Rng rng_;
  Vector ambient_;
};

TEST_F(RtiTest, WeightModelShapeAndSparsity) {
  const RtiLocalizer rti(scenario_.deployment(), ambient_);
  const Matrix& w = rti.weight_model();
  EXPECT_EQ(w.rows(), 10u);
  EXPECT_EQ(w.cols(), 96u);
  // Each link's ellipse covers only a band of grids, not the whole area.
  std::size_t nonzero = 0;
  for (double v : w.data())
    if (v != 0.0) ++nonzero;
  EXPECT_GT(nonzero, 0u);
  EXPECT_LT(nonzero, w.size() / 2);
}

TEST_F(RtiTest, WeightsScaleInverseSqrtLinkLength) {
  const RtiLocalizer rti(scenario_.deployment(), ambient_);
  const Matrix& w = rti.weight_model();
  const double expected = 1.0 / std::sqrt(scenario_.deployment().links()[0].length());
  for (std::size_t j = 0; j < w.cols(); ++j) {
    if (w(0, j) != 0.0) EXPECT_NEAR(w(0, j), expected, 1e-12);
  }
}

TEST_F(RtiTest, ImagePeaksNearTarget) {
  const RtiLocalizer rti(scenario_.deployment(), ambient_);
  const Point2 target = scenario_.deployment().grid().center(40);
  const Vector y = scenario_.collector().observe(target, 0.0, rng_);
  const Vector img = rti.image(y);
  std::size_t argmax = 0;
  for (std::size_t j = 1; j < img.size(); ++j)
    if (img[j] > img[argmax]) argmax = j;
  const Point2 peak = scenario_.deployment().grid().center(argmax);
  EXPECT_LT(distance(peak, target), 1.6);
}

TEST_F(RtiTest, LocalizesGridCenterTargets) {
  const RtiLocalizer rti(scenario_.deployment(), ambient_);
  double total = 0.0;
  const std::vector<std::size_t> cells{10, 30, 50, 70, 90};
  for (std::size_t j : cells) {
    const Point2 target = scenario_.deployment().grid().center(j);
    const Vector y = scenario_.collector().observe(target, 0.0, rng_);
    total += distance(rti.localize(y), target);
  }
  EXPECT_LT(total / static_cast<double>(cells.size()), 1.8);
}

TEST_F(RtiTest, AmbientObservationGivesFlatImage) {
  const RtiLocalizer rti(scenario_.deployment(), ambient_);
  const Vector y = scenario_.collector().observe_ambient(0.0, rng_);
  const Vector img = rti.image(y);
  double max_abs = 0.0;
  for (double v : img) max_abs = std::max(max_abs, std::abs(v));
  EXPECT_LT(max_abs, 0.6);  // nothing but noise in the image
}

TEST_F(RtiTest, NeedsNoFingerprintsSoAgeDoesNotMatter) {
  // RTI's accuracy at t=90 d (with a fresh ambient scan) should match
  // its accuracy at t=0: no fingerprint DB to go stale.
  const double t = 90.0;
  Vector ambient_now = scenario_.collector().ambient_scan(t, rng_);
  const RtiLocalizer rti_now(scenario_.deployment(), ambient_now);
  const RtiLocalizer rti_then(scenario_.deployment(), ambient_);

  double err_now = 0.0, err_then = 0.0;
  for (std::size_t j : {20u, 45u, 75u}) {
    const Point2 target = scenario_.deployment().grid().center(j);
    const Vector y_now = scenario_.collector().observe(target, t, rng_);
    const Vector y_then = scenario_.collector().observe(target, 0.0, rng_);
    err_now += distance(rti_now.localize(y_now), target);
    err_then += distance(rti_then.localize(y_then), target);
  }
  EXPECT_LT(err_now, err_then + 2.5);
}

TEST_F(RtiTest, RejectsBadConfig) {
  RtiConfig cfg;
  cfg.ellipse_width_m = 0.0;
  EXPECT_THROW(RtiLocalizer(scenario_.deployment(), ambient_, cfg), std::invalid_argument);
  cfg = RtiConfig{};
  cfg.ridge = 0.0;
  EXPECT_THROW(RtiLocalizer(scenario_.deployment(), ambient_, cfg), std::invalid_argument);
  cfg = RtiConfig{};
  cfg.top_fraction = 0.0;
  EXPECT_THROW(RtiLocalizer(scenario_.deployment(), ambient_, cfg), std::invalid_argument);
}

TEST_F(RtiTest, RejectsWrongAmbientLength) {
  Vector bad{1.0, 2.0};
  EXPECT_THROW(RtiLocalizer(scenario_.deployment(), bad), std::invalid_argument);
}

TEST_F(RtiTest, RejectsWrongObservationLength) {
  const RtiLocalizer rti(scenario_.deployment(), ambient_);
  const std::vector<double> bad{1.0};
  EXPECT_THROW(rti.localize(bad), std::invalid_argument);
}

/// A channel with mild multipath: with TWO bodies the ghost responses
/// add up and (realistically) wreck the tomographic image, so the blob
/// mechanism is tested where the linear model approximately holds.
Scenario gentle_scenario(std::uint64_t seed) {
  ChannelConfig cfg;
  cfg.multipath_ghost_db = 0.4;
  cfg.static_ripple_db = 0.4;
  return Scenario(Deployment::paper_room(), cfg, seed);
}

TEST(RtiMultiTarget, FindsTwoSeparatedPeople) {
  const Scenario s = gentle_scenario(31);
  Rng rng(31);
  const Vector ambient = s.collector().ambient_scan(0.0, rng);
  const RtiLocalizer rti(s.deployment(), ambient);
  // Two targets sharing a horizontal band: no cross-ambiguity (see the
  // CrossAmbiguity test below for the degenerate rectangle case).
  const std::vector<Point2> targets{{1.5, 2.4}, {5.7, 2.4}};
  const Vector y = s.collector().observe_multi(targets, 0.0, rng);
  const auto found = rti.localize_multi(y, 2);
  ASSERT_GE(found.size(), 1u);
  for (const Point2& truth : targets) {
    double best = 1e9;
    for (const Point2& est : found) best = std::min(best, distance(est, truth));
    EXPECT_LT(best, 2.0) << "missed target at (" << truth.x << ", " << truth.y << ")";
  }
}

TEST(RtiMultiTarget, CrossAmbiguityBlobsLandOnIntersections) {
  // Two targets at opposite rectangle corners: with (near-)orthogonal
  // link bands, tomography cannot tell {(x1,y1),(x2,y2)} from
  // {(x1,y2),(x2,y1)} -- the blobs must land near SOME of the four band
  // intersections, which is the documented behaviour, not a bug.
  const Scenario s = gentle_scenario(32);
  Rng rng(32);
  const Vector ambient = s.collector().ambient_scan(0.0, rng);
  const RtiLocalizer rti(s.deployment(), ambient);
  const std::vector<Point2> targets{{1.5, 1.2}, {5.7, 3.6}};
  const Vector y = s.collector().observe_multi(targets, 0.0, rng);
  const auto found = rti.localize_multi(y, 2);
  ASSERT_GE(found.size(), 1u);

  const Point2 candidates[] = {{1.5, 1.2}, {5.7, 3.6}, {1.5, 3.6}, {5.7, 1.2}};
  for (const Point2& est : found) {
    double best = 1e9;
    for (const Point2& c : candidates) best = std::min(best, distance(est, c));
    EXPECT_LT(best, 2.0) << "blob at (" << est.x << ", " << est.y
                         << ") is not near any band intersection";
  }
}

TEST_F(RtiTest, MultiTargetEmptyRoomFindsLittle) {
  const RtiLocalizer rti(scenario_.deployment(), ambient_);
  const std::vector<Point2> none;
  const Vector y = scenario_.collector().observe_multi(none, 0.0, rng_);
  const auto found = rti.localize_multi(y, 3);
  // A noise-only image has no dominant blob structure; whatever blob
  // survives thresholding is at most a couple of spurious components.
  EXPECT_LE(found.size(), 3u);
}

TEST_F(RtiTest, MultiTargetSingleReducesTowardLocalize) {
  const RtiLocalizer rti(scenario_.deployment(), ambient_);
  const Point2 target = scenario_.deployment().grid().center(40);
  const Vector y = scenario_.collector().observe(target, 0.0, rng_);
  const auto found = rti.localize_multi(y, 1);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_LT(distance(found[0], rti.localize(y)), 1.0);
}

TEST_F(RtiTest, MultiTargetOrderedByBlobWeight) {
  const RtiLocalizer rti(scenario_.deployment(), ambient_);
  const std::vector<Point2> targets{{1.5, 1.2}, {5.7, 3.6}};
  const Vector y = scenario_.collector().observe_multi(targets, 0.0, rng_);
  const auto two = rti.localize_multi(y, 2);
  const auto one = rti.localize_multi(y, 1);
  ASSERT_GE(two.size(), 1u);
  ASSERT_EQ(one.size(), 1u);
  // The first (heaviest) blob must be stable under the max_targets cap.
  EXPECT_LT(distance(two[0], one[0]), 1e-9);
}

TEST_F(RtiTest, MultiTargetRejectsBadArguments) {
  const RtiLocalizer rti(scenario_.deployment(), ambient_);
  const Vector y(10, -40.0);
  EXPECT_THROW(rti.localize_multi(y, 0), std::invalid_argument);
  EXPECT_THROW(rti.localize_multi(y, 2, 0.0), std::invalid_argument);
  EXPECT_THROW(rti.localize_multi(y, 2, 1.0), std::invalid_argument);
}

TEST_F(RtiTest, IterativeBackendMatchesDirectImage) {
  RtiConfig direct_cfg;
  RtiConfig iter_cfg;
  iter_cfg.solver = RtiSolver::Iterative;
  const RtiLocalizer direct(scenario_.deployment(), ambient_, direct_cfg);
  const RtiLocalizer iterative(scenario_.deployment(), ambient_, iter_cfg);

  const Point2 target = scenario_.deployment().grid().center(40);
  const Vector y = scenario_.collector().observe(target, 0.0, rng_);
  const Vector img_d = direct.image(y);
  const Vector img_i = iterative.image(y);
  ASSERT_EQ(img_d.size(), img_i.size());
  double worst = 0.0;
  for (std::size_t j = 0; j < img_d.size(); ++j)
    worst = std::max(worst, std::abs(img_d[j] - img_i[j]));
  EXPECT_LT(worst, 1e-5);
}

TEST_F(RtiTest, IterativeBackendLocalizesSameTargets) {
  RtiConfig iter_cfg;
  iter_cfg.solver = RtiSolver::Iterative;
  const RtiLocalizer direct(scenario_.deployment(), ambient_);
  const RtiLocalizer iterative(scenario_.deployment(), ambient_, iter_cfg);
  for (std::size_t j : {10u, 50u, 90u}) {
    const Point2 target = scenario_.deployment().grid().center(j);
    const Vector y = scenario_.collector().observe(target, 0.0, rng_);
    EXPECT_LT(distance(direct.localize(y), iterative.localize(y)), 0.05);
  }
}

TEST_F(RtiTest, IterativeBackendHasNoDenseModel) {
  RtiConfig cfg;
  cfg.solver = RtiSolver::Iterative;
  const RtiLocalizer rti(scenario_.deployment(), ambient_, cfg);
  EXPECT_THROW(rti.weight_model(), std::logic_error);
  EXPECT_GT(rti.sparse_weight_model().nnz(), 0u);
}

TEST(RtiLargeArea, IterativeBackendScalesToBigGrids) {
  // 18 m x 18 m = 900 cells: the iterative backend must build fast and
  // localize sensibly (the dense backend would factor a 900x900 matrix).
  const Scenario s = Scenario::square_area(18.0, 8);
  Rng rng(8);
  const Vector ambient = s.collector().ambient_scan(0.0, rng);
  RtiConfig cfg;
  cfg.solver = RtiSolver::Iterative;
  const RtiLocalizer rti(s.deployment(), ambient, cfg);
  double total = 0.0;
  const std::vector<Point2> targets{{4.0, 5.0}, {12.5, 9.3}, {9.0, 15.0}};
  for (const Point2& target : targets) {
    const Vector y = s.collector().observe(target, 0.0, rng);
    total += distance(rti.localize(y), target);
  }
  EXPECT_LT(total / 3.0, 3.5);
}

TEST_F(RtiTest, NameIsRti) {
  const RtiLocalizer rti(scenario_.deployment(), ambient_);
  EXPECT_EQ(rti.name(), "RTI");
}

}  // namespace
}  // namespace tafloc
