#include "tafloc/fingerprint/reference.h"

#include <gtest/gtest.h>

#include <set>

#include "tafloc/linalg/lsq.h"
#include "tafloc/linalg/ops.h"
#include "tafloc/sim/scenario.h"

namespace tafloc {
namespace {

TEST(ReferenceSelection, QrPivotReturnsDistinctIndices) {
  Rng rng(1);
  const Matrix x0 = random_low_rank(10, 40, 5, rng);
  const auto refs = select_reference_locations(x0, 8, ReferencePolicy::QrPivot);
  EXPECT_EQ(refs.size(), 8u);
  std::set<std::size_t> unique(refs.begin(), refs.end());
  EXPECT_EQ(unique.size(), 8u);
  for (std::size_t r : refs) EXPECT_LT(r, 40u);
}

TEST(ReferenceSelection, QrPivotSpansLowRankMatrix) {
  // With rank-r data, r QR-pivot columns must reconstruct the whole
  // matrix by linear combination (the paper's property ii).
  Rng rng(2);
  const Matrix x0 = random_low_rank(12, 50, 4, rng);
  const auto refs = select_reference_locations(x0, 4, ReferencePolicy::QrPivot);
  const Matrix xr = x0.select_columns(refs);
  const Matrix z = solve_ridge_matrix(xr, x0, 1e-10);
  EXPECT_LT(max_abs_diff(xr * z, x0), 1e-6);
}

TEST(ReferenceSelection, QrPivotBeatsWorstCaseRandom) {
  // Construct a matrix where columns 0..2 are informative and the rest
  // are near-copies of column 0; QR pivoting must select the three
  // informative directions first.
  Matrix x0(3, 20);
  for (std::size_t j = 0; j < 20; ++j) {
    x0(0, j) = 1.0;
    x0(1, j) = (j == 1) ? 1.0 : 0.0;
    x0(2, j) = (j == 2) ? 1.0 : 0.0;
  }
  const auto refs = select_reference_locations(x0, 3, ReferencePolicy::QrPivot);
  const std::set<std::size_t> chosen(refs.begin(), refs.end());
  EXPECT_TRUE(chosen.count(1) == 1);
  EXPECT_TRUE(chosen.count(2) == 1);
}

TEST(ReferenceSelection, RandomPolicyNeedsRng) {
  Rng rng(3);
  const Matrix x0 = random_gaussian(4, 10, rng);
  EXPECT_THROW(select_reference_locations(x0, 3, ReferencePolicy::Random, nullptr),
               std::invalid_argument);
}

TEST(ReferenceSelection, RandomPolicyDistinct) {
  Rng rng(4);
  const Matrix x0 = random_gaussian(4, 10, rng);
  const auto refs = select_reference_locations(x0, 5, ReferencePolicy::Random, &rng);
  std::set<std::size_t> unique(refs.begin(), refs.end());
  EXPECT_EQ(unique.size(), 5u);
}

TEST(ReferenceSelection, UniformGridEvenlySpaced) {
  Rng rng(5);
  const Matrix x0 = random_gaussian(4, 100, rng);
  const auto refs = select_reference_locations(x0, 10, ReferencePolicy::UniformGrid);
  ASSERT_EQ(refs.size(), 10u);
  for (std::size_t k = 0; k < 10; ++k) EXPECT_EQ(refs[k], 10 * k + 5);
}

TEST(ReferenceSelection, UniformGridDistinctForAnyCount) {
  Rng rng(6);
  const Matrix x0 = random_gaussian(4, 96, rng);
  for (std::size_t count : {1u, 7u, 48u, 96u}) {
    const auto refs = select_reference_locations(x0, count, ReferencePolicy::UniformGrid);
    std::set<std::size_t> unique(refs.begin(), refs.end());
    EXPECT_EQ(unique.size(), count);
  }
}

TEST(ReferenceSelection, RejectsBadCount) {
  Rng rng(7);
  const Matrix x0 = random_gaussian(4, 10, rng);
  EXPECT_THROW(select_reference_locations(x0, 0, ReferencePolicy::QrPivot),
               std::invalid_argument);
  EXPECT_THROW(select_reference_locations(x0, 11, ReferencePolicy::QrPivot),
               std::invalid_argument);
}

TEST(SuggestReferenceCount, MatchesNumericRank) {
  Rng rng(8);
  const Matrix x0 = random_low_rank(10, 30, 6, rng);
  EXPECT_EQ(suggest_reference_count(x0, 1e-8), 6u);
}

TEST(SuggestReferenceCount, AtLeastOne) {
  const Matrix zero(4, 6);
  EXPECT_EQ(suggest_reference_count(zero), 1u);
}

TEST(SuggestReferenceCount, PaperRoomIsSmall) {
  // The fingerprint matrix of the paper room is approximately low rank:
  // a handful of reference locations suffices (n << N = 96).
  const Scenario s = Scenario::paper_room(9);
  Rng rng(9);
  const Matrix x0 = s.collector().survey_all(0.0, rng);
  const std::size_t n = suggest_reference_count(x0, 1e-3);
  EXPECT_LE(n, 12u);
  EXPECT_GE(n, 1u);
}

}  // namespace
}  // namespace tafloc
