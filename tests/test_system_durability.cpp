// TafLocSystem durability: save/recover round trips, WAL replay,
// snapshot fallback, scheduler persistence and recovery telemetry.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <string>

#include "tafloc/storage/snapshot.h"
#include "tafloc/tafloc.h"

namespace tafloc {
namespace {

namespace fs = std::filesystem;

class TempZone {
 public:
  explicit TempZone(const std::string& tag)
      : path_(fs::temp_directory_path() /
              ("tafloc_zone_" + tag + "_" + std::to_string(::getpid()))) {
    fs::remove_all(path_);
  }
  ~TempZone() { fs::remove_all(path_); }
  std::string str() const { return path_.string(); }

 private:
  fs::path path_;
};

class SystemDurabilityTest : public ::testing::Test {
 protected:
  SystemDurabilityTest() : scenario_(Scenario::paper_room(4242)) {}

  TafLocSystem fresh_system() const { return TafLocSystem(scenario_.deployment()); }

  void calibrate(TafLocSystem& sys, Rng& rng) const {
    sys.calibrate(scenario_.collector().survey_all(0.0, rng),
                  scenario_.collector().ambient_scan(0.0, rng), 0.0);
  }

  Vector query(double t, Rng& rng) const {
    return scenario_.collector().observe({2.0, 3.0}, t, rng);
  }

  Scenario scenario_;
};

TEST_F(SystemDurabilityTest, CalibrateCommitsRecoverableSnapshot) {
  TempZone zone("calibrate");
  Rng rng(1);
  {
    TafLocSystem sys = fresh_system();
    sys.attach_durability({zone.str()});
    calibrate(sys, rng);
    EXPECT_TRUE(sys.durable());
  }
  TafLocSystem restored = fresh_system();
  restored.attach_durability({zone.str()});
  const RecoveryReport report = restored.recover();
  EXPECT_EQ(report.outcome, RecoveryReport::Outcome::kClean);
  EXPECT_EQ(report.replayed_records, 0u);
  EXPECT_TRUE(restored.calibrated());
}

TEST_F(SystemDurabilityTest, RecoveredStateIsBitIdentical) {
  TempZone zone("bitident");
  Rng rng(2);
  TafLocSystem live = fresh_system();
  live.attach_durability({zone.str()});
  calibrate(live, rng);
  // Durable traffic: health-driving queries (one with a NaN link) and
  // an update; the WAL + snapshots must capture all of it.
  Vector bad = query(0.1, rng);
  bad[3] = std::nan("");
  live.localize_degraded(bad);
  live.localize_degraded(query(0.2, rng));
  live.update_with_collector(scenario_.collector(), 1.0, rng);
  live.localize_degraded(query(1.1, rng));
  live.save();

  TafLocSystem restored = fresh_system();
  restored.attach_durability({zone.str()});
  const RecoveryReport report = restored.recover();
  EXPECT_NE(report.outcome, RecoveryReport::Outcome::kUnrecoverable);
  ASSERT_TRUE(restored.calibrated());
  EXPECT_TRUE(restored.database() == live.database());
  EXPECT_TRUE(restored.link_health() == live.link_health());

  Rng probe(99);
  const Vector rss = query(2.0, probe);
  const Point2 a = live.localize(rss);
  const Point2 b = restored.localize(rss);
  EXPECT_EQ(a.x, b.x);
  EXPECT_EQ(a.y, b.y);
}

TEST_F(SystemDurabilityTest, WalReplayReconstructsUncommittedTail) {
  TempZone zone("replay");
  Rng rng(3);
  TafLocSystem live = fresh_system();
  live.attach_durability({zone.str()});
  calibrate(live, rng);
  // WAL-only mutations after the last snapshot (no save() call): a
  // recovery must replay them rather than lose them.
  Vector bad = query(0.1, rng);
  bad[1] = std::nan("");
  live.localize_degraded(bad);
  live.localize_degraded(query(0.2, rng));
  live.localize_degraded(query(0.3, rng));

  TafLocSystem restored = fresh_system();
  restored.attach_durability({zone.str()});
  const RecoveryReport report = restored.recover();
  EXPECT_EQ(report.outcome, RecoveryReport::Outcome::kReplayed);
  EXPECT_EQ(report.replayed_records, 3u);
  EXPECT_EQ(report.sequence, 3u);
  EXPECT_TRUE(restored.link_health() == live.link_health());
  EXPECT_TRUE(restored.database() == live.database());
}

TEST_F(SystemDurabilityTest, SchedulerStateRidesSnapshotsAndWal) {
  TempZone zone("sched");
  Rng rng(4);
  TafLocSystem live = fresh_system();
  UpdateScheduler live_sched(scenario_.collector().ambient_scan(0.0, rng), 0.0);
  live.attach_durability({zone.str()});
  live.attach_scheduler(&live_sched);
  calibrate(live, rng);
  live_sched.observe_ambient(scenario_.collector().observe_ambient(0.5, rng), 0.5);
  live_sched.observe_ambient(scenario_.collector().observe_ambient(0.2, rng), 0.2);  // dropped.
  live_sched.notify_updated(scenario_.collector().ambient_scan(0.7, rng), 0.7);
  live_sched.observe_ambient(scenario_.collector().observe_ambient(0.9, rng), 0.9);

  TafLocSystem restored = fresh_system();
  UpdateScheduler restored_sched(Vector(scenario_.deployment().num_links(), 0.0), 0.0);
  restored.attach_durability({zone.str()});
  restored.attach_scheduler(&restored_sched);
  const RecoveryReport report = restored.recover();
  EXPECT_EQ(report.outcome, RecoveryReport::Outcome::kReplayed);
  EXPECT_EQ(report.replayed_records, 4u);  // 3 ambient samples + 1 notify.
  EXPECT_TRUE(restored_sched == live_sched);
  EXPECT_EQ(restored_sched.dropped_out_of_order(), 1u);
  EXPECT_EQ(restored_sched.last_update_days(), 0.7);
}

TEST_F(SystemDurabilityTest, CorruptNewestSnapshotFallsBackAndReplays) {
  TempZone zone("fallback");
  Rng rng(5);
  TafLocSystem live = fresh_system();
  live.attach_durability({zone.str()});
  calibrate(live, rng);                                          // generation 1.
  live.localize_degraded(query(0.1, rng));                       // seq 1.
  live.update_with_collector(scenario_.collector(), 1.0, rng);   // seq 2, generation 2.

  // Corrupt the newest generation's file (gen 2 lives in slot 0).
  const storage::SnapshotStore store(zone.str());
  const auto before = store.load_latest();
  ASSERT_TRUE(before.snapshot.has_value());
  ASSERT_EQ(before.snapshot->generation, 2u);
  const std::string victim = store.slot_path(0);
  {
    std::fstream f(victim, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(100);
    f.put('\x7f');
  }

  TafLocSystem restored = fresh_system();
  restored.attach_durability({zone.str()});
  const RecoveryReport report = restored.recover();
  EXPECT_EQ(report.outcome, RecoveryReport::Outcome::kFellBack);
  EXPECT_EQ(report.snapshot_generation, 1u);
  // Replay carries the zone past the lost snapshot: the WAL still has
  // the observe and the raw update inputs.
  EXPECT_EQ(report.replayed_records, 2u);
  ASSERT_TRUE(restored.calibrated());
  EXPECT_TRUE(restored.database() == live.database());
}

TEST_F(SystemDurabilityTest, AllSnapshotsCorruptIsUnrecoverable) {
  TempZone zone("unrecoverable");
  Rng rng(6);
  {
    TafLocSystem live = fresh_system();
    live.attach_durability({zone.str()});
    calibrate(live, rng);
    live.update_with_collector(scenario_.collector(), 1.0, rng);
  }
  const storage::SnapshotStore store(zone.str());
  for (unsigned slot = 0; slot < 2; ++slot) {
    std::ofstream f(store.slot_path(slot), std::ios::binary | std::ios::trunc);
    f << std::string(128, '\0');
  }
  TafLocSystem restored = fresh_system();
  restored.attach_durability({zone.str()});
  const RecoveryReport report = restored.recover();
  EXPECT_EQ(report.outcome, RecoveryReport::Outcome::kUnrecoverable);
  EXPECT_FALSE(restored.calibrated());
}

TEST_F(SystemDurabilityTest, TornWalTailIsDroppedAndFlagged) {
  TempZone zone("torn");
  Rng rng(7);
  TafLocSystem live = fresh_system();
  live.attach_durability({zone.str()});
  calibrate(live, rng);
  live.localize_degraded(query(0.1, rng));
  live.localize_degraded(query(0.2, rng));

  // Tear the live segment's tail: the final record loses its last bytes.
  const std::string wal_path = zone.str() + "/wal-1.log";
  ASSERT_TRUE(fs::exists(wal_path));
  fs::resize_file(wal_path, fs::file_size(wal_path) - 4);

  TafLocSystem restored = fresh_system();
  restored.attach_durability({zone.str()});
  const RecoveryReport report = restored.recover();
  EXPECT_TRUE(report.torn_wal_tail);
  EXPECT_EQ(report.replayed_records, 1u);  // the intact prefix only.
  EXPECT_TRUE(restored.calibrated());
}

TEST_F(SystemDurabilityTest, RecoveryOutcomeReachesTelemetry) {
  TempZone zone("telemetry");
  Rng rng(8);
  {
    TafLocSystem live = fresh_system();
    live.attach_durability({zone.str()});
    calibrate(live, rng);
    live.localize_degraded(query(0.1, rng));
  }
  TafLocConfig config;
  config.telemetry.enabled = true;
  TafLocSystem restored(scenario_.deployment(), config);
  restored.attach_durability({zone.str()});
  restored.recover();
  const std::string json = restored.telemetry_snapshot_json();
  EXPECT_NE(json.find("durability.recovery.replayed"), std::string::npos);
  EXPECT_NE(json.find("durability.recovery.replayed_records"), std::string::npos);
  EXPECT_NE(json.find("durability.snapshots"), std::string::npos);
}

TEST_F(SystemDurabilityTest, SaveRequiresAttachAndCalibration) {
  TafLocSystem sys = fresh_system();
  EXPECT_THROW(sys.save(), std::logic_error);
  TempZone zone("guards");
  sys.attach_durability({zone.str()});
  EXPECT_THROW(sys.save(), std::logic_error);  // not calibrated yet.
  EXPECT_THROW(sys.attach_durability({""}), std::invalid_argument);
}

TEST_F(SystemDurabilityTest, NonDurableSystemIsUnaffected) {
  Rng rng(9);
  TafLocSystem sys = fresh_system();
  EXPECT_FALSE(sys.durable());
  calibrate(sys, rng);
  sys.localize_degraded(query(0.1, rng));
  EXPECT_THROW(sys.recover(), std::logic_error);
}

}  // namespace
}  // namespace tafloc
