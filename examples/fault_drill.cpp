// Fault drill: measure how TafLoc degrades as links die.
//
// Calibrates a clean system, then serves a stream of real-time queries
// whose readings pass through a seeded FaultInjector (dead links, NaN
// bursts, stuck radios, RSS spikes).  Every query goes through the
// fault-tolerant localize_degraded() path, so the drill also proves the
// serving process survives the whole schedule without aborting.
//
// Run:  ./fault_drill [--seed=N] [--dead-fraction=F] [--stuck-fraction=F]
//                     [--nan-burst-rate=F] [--spike-rate=F] [--queries=N]
//                     [--telemetry=PATH] [--max-median-error=M]
//
// With --max-median-error > 0 the drill exits non-zero when the median
// localization error exceeds that bound -- the CI smoke job uses this
// to pin the degradation envelope.  --telemetry exports the run's
// metric registry (system.degraded_* series included) as JSONL.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "tafloc/sim/fault.h"
#include "tafloc/tafloc.h"
#include "tafloc/util/cli.h"

int main(int argc, char** argv) {
  using namespace tafloc;
  const ArgParser args(argc, argv);
  const auto seed = static_cast<std::uint64_t>(args.get_long("seed", 42));
  FaultConfig faults;
  faults.dead_fraction = args.get_double("dead-fraction", 0.3);
  faults.stuck_fraction = args.get_double("stuck-fraction", 0.0);
  faults.nan_burst_rate = args.get_double("nan-burst-rate", 0.0);
  faults.spike_rate = args.get_double("spike-rate", 0.0);
  const auto queries = static_cast<std::size_t>(args.get_long("queries", 200));
  const std::string telemetry_path = args.get_string("telemetry", "");
  const double max_median_error = args.get_double("max-median-error", 0.0);

  const Scenario scenario = Scenario::paper_room(seed);
  const Deployment& room = scenario.deployment();
  Rng rng(seed);
  TafLocSystem tafloc(room);
  tafloc.calibrate(scenario.collector().survey_all(0.0, rng),
                   scenario.collector().ambient_scan(0.0, rng), 0.0);

  FaultInjector injector(room.num_links(), faults, seed + 1);
  std::printf("drill: %zu links, %zu dead, %zu stuck; %zu queries\n", room.num_links(),
              injector.dead_links().size(), injector.stuck_links().size(), queries);

  Rng target_rng = rng.fork();
  std::vector<double> errors;
  std::size_t unservable = 0;
  errors.reserve(queries);
  for (std::size_t q = 0; q < queries; ++q) {
    const Point2 truth{target_rng.uniform(0.0, room.grid().width()),
                       target_rng.uniform(0.0, room.grid().height())};
    Vector rss = scenario.collector().observe(truth, 0.0, rng);
    injector.apply(rss);
    const auto result = tafloc.localize_degraded(rss);
    if (!result.served) {
      ++unservable;
      continue;
    }
    errors.push_back(distance(result.point, truth));
  }

  double median = 0.0;
  if (!errors.empty()) {
    std::sort(errors.begin(), errors.end());
    median = errors[errors.size() / 2];
  }
  const LinkHealth& health = tafloc.link_health();
  std::printf("served %zu/%zu queries (%zu unservable); %zu/%zu links dead at end; "
              "median error %.3f m\n",
              errors.size(), queries, unservable, health.dead_count(), health.num_links(),
              median);

  if (!telemetry_path.empty()) {
    std::ofstream out(telemetry_path);
    if (!out) {
      std::fprintf(stderr, "cannot open '%s' for writing\n", telemetry_path.c_str());
      return 1;
    }
    out << tafloc.telemetry_snapshot_json();
    std::printf("telemetry -> %s\n", telemetry_path.c_str());
  }

  if (errors.empty()) {
    std::fprintf(stderr, "FAIL: no query was servable\n");
    return 1;
  }
  if (max_median_error > 0.0 && median > max_median_error) {
    std::fprintf(stderr, "FAIL: median error %.3f m exceeds bound %.3f m\n", median,
                 max_median_error);
    return 1;
  }
  return 0;
}
