// Crash drill: prove snapshot + WAL recovery is exact under violent
// process death and on-disk corruption.
//
// Phase 1 (kill drill): fork a child that calibrates a durable zone,
// attaches an UpdateScheduler, then runs a seeded stream of durable
// events -- degraded queries (kWalObserve), scheduler ambient samples
// (kWalAmbient), scheduler notifies (kWalNotify) and fingerprint
// updates (kWalUpdate, each committing a snapshot).  A CrashInjector
// arms one storage kill point, so the child _Exit()s (the in-process
// equivalent of kill -9) in the middle of a snapshot commit or WAL
// append.  The parent then recovers from the zone directory, derives
// the durable event prefix from the recovered sequence number, replays
// exactly those events on a fresh non-durable reference system, and
// asserts the recovered database, link health, scheduler state and
// localization answers are bit-identical to the reference.
//
// Phase 2 (corruption drill): builds a clean multi-generation zone,
// then corrupts the newest snapshot (bit flip / truncation / zero
// page) and asserts recovery NEVER loads corrupt bytes: it falls back
// one generation and replays forward to the same bit-identical state.
// With every snapshot corrupted it must report unrecoverable, not
// fabricate a zone.  A torn WAL tail must be dropped and flagged.
//
// Run:  ./crash_drill [--seed=N] [--events=N] [--kill-point=NAME|random]
//                     [--hits=N] [--dir=PATH] [--telemetry=PATH]
//
// Exits non-zero on the first violated invariant.  The CI smoke job
// runs this over a fixed seed set so every kill point is exercised.
#include <sys/wait.h>
#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "tafloc/sim/crash.h"
#include "tafloc/storage/snapshot.h"
#include "tafloc/tafloc.h"
#include "tafloc/util/cli.h"

namespace {

using namespace tafloc;

int g_failures = 0;

void check(bool ok, const std::string& what) {
  if (ok) {
    std::printf("  ok: %s\n", what.c_str());
  } else {
    std::fprintf(stderr, "  FAIL: %s\n", what.c_str());
    ++g_failures;
  }
}

// One durable event per sequence number; the schedule and every input
// are pure functions of (seed, index), so the parent can regenerate
// the exact prefix the child persisted before dying.
enum class EventKind { kObserve, kAmbient, kNotify, kUpdate };

EventKind event_kind(std::size_t i) {
  if (i % 17 == 0) return EventKind::kUpdate;
  if (i % 17 == 9) return EventKind::kNotify;
  if (i % 3 == 0) return EventKind::kAmbient;
  return EventKind::kObserve;
}

Rng event_rng(std::uint64_t seed, std::size_t i) {
  return Rng(seed * 1000003ULL + static_cast<std::uint64_t>(i));
}

double event_time(std::size_t i) { return 0.05 * static_cast<double>(i); }

// Apply event `i` to a system (+ scheduler).  Durable systems log it;
// the non-durable reference applies it identically without logging.
void apply_event(const Scenario& scenario, TafLocSystem& sys, UpdateScheduler& sched,
                 std::uint64_t seed, std::size_t i) {
  Rng rng = event_rng(seed, i);
  const double t = event_time(i);
  const Deployment& room = scenario.deployment();
  switch (event_kind(i)) {
    case EventKind::kObserve: {
      const Point2 target{rng.uniform(0.0, room.grid().width()),
                          rng.uniform(0.0, room.grid().height())};
      Vector rss = scenario.collector().observe(target, t, rng);
      if (i % 5 == 2) rss[i % rss.size()] = std::nan("");  // exercise health transitions.
      sys.localize_degraded(rss);
      break;
    }
    case EventKind::kAmbient:
      sched.observe_ambient(scenario.collector().observe_ambient(t, rng), t);
      break;
    case EventKind::kNotify:
      sched.notify_updated(scenario.collector().ambient_scan(t, rng), t);
      break;
    case EventKind::kUpdate:
      sys.update_with_collector(scenario.collector(), t, rng);
      break;
  }
}

struct Zone {
  TafLocSystem system;
  UpdateScheduler scheduler;
};

Zone make_zone(const Scenario& scenario, std::uint64_t seed) {
  Rng rng(seed);
  TafLocSystem sys(scenario.deployment());
  Vector ambient = scenario.collector().ambient_scan(0.0, rng);
  UpdateScheduler sched(ambient, 0.0);
  return Zone{std::move(sys), std::move(sched)};
}

void calibrate_zone(const Scenario& scenario, Zone& zone, std::uint64_t seed) {
  Rng rng(seed);
  Matrix survey = scenario.collector().survey_all(0.0, rng);
  Vector ambient = scenario.collector().ambient_scan(0.0, rng);
  zone.system.calibrate(survey, std::move(ambient), 0.0);
}

// The child half of the kill drill: build the durable zone, arm the
// kill point, stream events.  Never returns on a fired kill point;
// exits 0 when the armed point was never crossed often enough.
[[noreturn]] void run_child(const Scenario& scenario, const std::string& dir,
                            std::uint64_t seed, std::size_t events,
                            storage::KillPoint point, std::size_t hits) {
  Zone zone = make_zone(scenario, seed);
  zone.system.attach_durability({dir});
  zone.system.attach_scheduler(&zone.scheduler);
  calibrate_zone(scenario, zone, seed);  // generation 1: the replay baseline.
  storage::arm_kill_point(point, hits);
  for (std::size_t i = 1; i <= events; ++i)
    apply_event(scenario, zone.system, zone.scheduler, seed, i);
  std::_Exit(0);
}

// Exact-equality probes: a recovered zone must answer like the
// reference down to the bit on a fixed query set.
bool same_answers(const Scenario& scenario, const TafLocSystem& a, const TafLocSystem& b,
                  std::uint64_t seed) {
  Rng rng(seed + 777);
  const Deployment& room = scenario.deployment();
  for (int q = 0; q < 16; ++q) {
    const Point2 target{rng.uniform(0.0, room.grid().width()),
                        rng.uniform(0.0, room.grid().height())};
    const Vector rss = scenario.collector().observe(target, 99.0, rng);
    const Point2 pa = a.localize(rss);
    const Point2 pb = b.localize(rss);
    if (pa.x != pb.x || pa.y != pb.y) return false;
  }
  return true;
}

int kill_drill(const Scenario& scenario, const std::string& dir, std::uint64_t seed,
               std::size_t events, storage::KillPoint point, std::size_t hits,
               const std::string& telemetry_path) {
  std::filesystem::remove_all(dir);
  std::printf("kill drill: point=%s hits=%zu events=%zu dir=%s\n",
              storage::kill_point_name(point).c_str(), hits, events, dir.c_str());

  const pid_t pid = fork();
  if (pid < 0) {
    std::perror("fork");
    return 1;
  }
  if (pid == 0) run_child(scenario, dir, seed, events, point, hits);

  int status = 0;
  if (waitpid(pid, &status, 0) != pid) {
    std::perror("waitpid");
    return 1;
  }
  const bool died = WIFEXITED(status) && WEXITSTATUS(status) == storage::kKillExitCode;
  const bool finished = WIFEXITED(status) && WEXITSTATUS(status) == 0;
  check(died || finished, "child died at the kill point or completed (status " +
                              std::to_string(status) + ")");
  std::printf("  child %s\n", died ? "killed at the armed point" : "completed all events");

  // Recover in this process.
  Zone zone = make_zone(scenario, seed);
  zone.system.attach_durability({dir});
  zone.system.attach_scheduler(&zone.scheduler);
  const RecoveryReport report = zone.system.recover();
  std::printf("  recovery: %s, snapshot gen %llu, replayed %zu, skipped %zu, seq %llu%s%s\n",
              recovery_outcome_name(report.outcome),
              static_cast<unsigned long long>(report.snapshot_generation),
              report.replayed_records, report.skipped_records,
              static_cast<unsigned long long>(report.sequence),
              report.torn_wal_tail ? ", torn tail" : "",
              report.detail.empty() ? "" : (", " + report.detail).c_str());
  check(report.outcome != RecoveryReport::Outcome::kUnrecoverable,
        "zone recovered (calibration snapshot always exists)");
  check(zone.system.calibrated(), "recovered system is calibrated");
  if (!zone.system.calibrated()) return 1;

  // The durable prefix: event i carries WAL sequence i (calibration is
  // sequence 0), so the recovered sequence IS the last durable event.
  const auto durable_events = static_cast<std::size_t>(report.sequence);
  check(durable_events <= events, "recovered sequence within the event stream");
  Zone ref = make_zone(scenario, seed);
  calibrate_zone(scenario, ref, seed);
  for (std::size_t i = 1; i <= durable_events; ++i)
    apply_event(scenario, ref.system, ref.scheduler, seed, i);

  check(zone.system.database() == ref.system.database(),
        "recovered database bit-identical to snapshot+replay reference");
  check(zone.system.link_health() == ref.system.link_health(),
        "recovered link health bit-identical");
  check(zone.scheduler == ref.scheduler, "recovered scheduler state bit-identical");
  check(same_answers(scenario, zone.system, ref.system, seed),
        "recovered localization answers match the reference exactly");

  if (!telemetry_path.empty()) {
    std::ofstream out(telemetry_path);
    if (!out) {
      std::fprintf(stderr, "cannot open '%s' for writing\n", telemetry_path.c_str());
      return 1;
    }
    out << zone.system.telemetry_snapshot_json();
    std::printf("  telemetry -> %s\n", telemetry_path.c_str());
  }
  return 0;
}

// Build a clean zone with a few generations + a short WAL tail on disk.
void build_corruption_fixture(const Scenario& scenario, const std::string& dir,
                              std::uint64_t seed, std::size_t events) {
  std::filesystem::remove_all(dir);
  Zone zone = make_zone(scenario, seed);
  zone.system.attach_durability({dir});
  zone.system.attach_scheduler(&zone.scheduler);
  calibrate_zone(scenario, zone, seed);
  for (std::size_t i = 1; i <= events; ++i)
    apply_event(scenario, zone.system, zone.scheduler, seed, i);
}

std::string newest_snapshot_path(const std::string& dir) {
  const storage::SnapshotStore store(dir);
  const auto loaded = store.load_latest();
  if (!loaded.snapshot.has_value()) return "";
  return store.slot_path(static_cast<unsigned>(loaded.snapshot->generation % 2));
}

int corruption_drill(const Scenario& scenario, const std::string& dir, std::uint64_t seed,
                     std::size_t events) {
  struct Case {
    const char* name;
    bool (*corrupt)(const std::string& path);
  };
  const Case cases[] = {
      {"bit flip", [](const std::string& p) { return CrashInjector::flip_bit(p, 64); }},
      {"truncation",
       [](const std::string& p) {
         const auto size = std::filesystem::file_size(p);
         return CrashInjector::truncate_file(p, size / 2);
       }},
      {"zero page",
       [](const std::string& p) { return CrashInjector::zero_range(p, 32, 128); }},
  };

  for (const Case& c : cases) {
    std::printf("corruption drill: %s on the newest snapshot\n", c.name);
    build_corruption_fixture(scenario, dir, seed, events);

    // Reference: recover the intact zone (exercises no fallback).
    Zone ref = make_zone(scenario, seed);
    ref.system.attach_durability({dir});
    ref.system.attach_scheduler(&ref.scheduler);
    const RecoveryReport ref_report = ref.system.recover();
    std::printf("  ref recovery: %s, snapshot gen %llu, replayed %zu, skipped %zu, seq %llu, detail '%s'\n",
                recovery_outcome_name(ref_report.outcome),
                static_cast<unsigned long long>(ref_report.snapshot_generation),
                ref_report.replayed_records, ref_report.skipped_records,
                static_cast<unsigned long long>(ref_report.sequence), ref_report.detail.c_str());
    check(ref_report.outcome != RecoveryReport::Outcome::kFellBack &&
              ref_report.outcome != RecoveryReport::Outcome::kUnrecoverable,
          "intact zone recovers without fallback");
    // recover() committed a fresh newest generation; corrupt THAT.
    const std::string victim = newest_snapshot_path(dir);
    check(!victim.empty() && c.corrupt(victim), std::string("corrupted ") + victim);

    Zone zone = make_zone(scenario, seed);
    zone.system.attach_durability({dir});
    zone.system.attach_scheduler(&zone.scheduler);
    const RecoveryReport report = zone.system.recover();
    std::printf("  recovery: %s, snapshot gen %llu, replayed %zu\n",
                recovery_outcome_name(report.outcome),
                static_cast<unsigned long long>(report.snapshot_generation),
                report.replayed_records);
    check(report.outcome == RecoveryReport::Outcome::kFellBack,
          "corruption detected; fell back one generation");
    check(zone.system.calibrated(), "fallback generation recovered");
    if (!zone.system.calibrated()) continue;
    check(zone.system.database() == ref.system.database(),
          "fallback + WAL replay reaches the identical state");
    check(zone.scheduler == ref.scheduler, "scheduler state identical after fallback");
  }

  // Every snapshot corrupted: recovery must refuse, not fabricate.
  std::printf("corruption drill: every snapshot generation corrupted\n");
  build_corruption_fixture(scenario, dir, seed, events);
  const storage::SnapshotStore store(dir);
  bool corrupted_all = true;
  for (unsigned slot = 0; slot < 2; ++slot)
    if (std::filesystem::exists(store.slot_path(slot)))
      corrupted_all = CrashInjector::zero_range(store.slot_path(slot), 0, 64) && corrupted_all;
  check(corrupted_all, "zeroed every snapshot slot");
  {
    Zone zone = make_zone(scenario, seed);
    zone.system.attach_durability({dir});
    const RecoveryReport report = zone.system.recover();
    check(report.outcome == RecoveryReport::Outcome::kUnrecoverable,
          "all-corrupt zone reported unrecoverable");
    check(!zone.system.calibrated(), "nothing corrupt was ever loaded");
  }

  // Torn WAL tail: chop bytes off the live segment; the tail record is
  // dropped and flagged, everything before it replays.
  std::printf("corruption drill: torn WAL tail\n");
  build_corruption_fixture(scenario, dir, seed, events);
  std::string wal_path;
  std::uintmax_t wal_size = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("wal-", 0) == 0 && entry.file_size() > wal_size) {
      wal_path = entry.path().string();
      wal_size = entry.file_size();
    }
  }
  check(!wal_path.empty() && wal_size > 3, "found a WAL segment to tear");
  if (!wal_path.empty() && wal_size > 3) {
    check(CrashInjector::truncate_file(wal_path, static_cast<std::size_t>(wal_size) - 3),
          "tore the WAL tail");
    Zone zone = make_zone(scenario, seed);
    zone.system.attach_durability({dir});
    zone.system.attach_scheduler(&zone.scheduler);
    const RecoveryReport report = zone.system.recover();
    check(report.outcome != RecoveryReport::Outcome::kUnrecoverable,
          "torn-tail zone still recovers");
    check(report.torn_wal_tail, "torn tail detected and flagged");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tafloc;
  const ArgParser args(argc, argv);
  const auto seed = static_cast<std::uint64_t>(args.get_long("seed", 42));
  const auto events = static_cast<std::size_t>(args.get_long("events", 60));
  const auto hits_arg = static_cast<std::size_t>(args.get_long("hits", 0));
  const std::string point_name = args.get_string("kill-point", "random");
  const std::string dir = args.get_string("dir", "crash_drill_zone");
  const std::string telemetry_path = args.get_string("telemetry", "");

  // Seeded scenario shared by child, recovery and reference.
  const Scenario scenario = Scenario::paper_room(seed);

  storage::KillPoint point;
  std::size_t hits;
  if (point_name == "random") {
    const CrashInjector injector(seed);
    point = injector.kill_point();
    hits = hits_arg != 0 ? hits_arg : injector.hits();
  } else {
    point = storage::kill_point_from_name(point_name);
    hits = hits_arg != 0 ? hits_arg : 1;
  }

  int rc = kill_drill(scenario, dir, seed, events, point, hits, telemetry_path);
  if (rc == 0) rc = corruption_drill(scenario, dir + "-corrupt", seed, events);

  if (g_failures > 0 || rc != 0) {
    std::fprintf(stderr, "crash drill: %d failure(s)\n", g_failures);
    return 1;
  }
  std::printf("crash drill: all invariants held\n");
  return 0;
}
