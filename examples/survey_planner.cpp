// Survey planner: a deployment-time tool.  Given an area size, it
// reports how many reference locations TafLoc will need, where they
// are (ASCII map), and what every future fingerprint refresh will cost
// compared to a full re-survey -- the paper's Fig. 4 economics for YOUR
// room.
//
// Run:  ./survey_planner [--width=W] [--height=H] [--seed=N]
#include <cstdio>
#include <string>

#include "tafloc/tafloc.h"
#include "tafloc/util/cli.h"
#include "tafloc/util/table.h"

int main(int argc, char** argv) {
  using namespace tafloc;
  const ArgParser args(argc, argv);
  const double width = args.get_double("width", 7.2);
  const double height = args.get_double("height", 4.8);
  const auto seed = static_cast<std::uint64_t>(args.get_long("seed", 5));

  const auto num_links = static_cast<std::size_t>(
      std::max(2.0, std::round((width + height) / 2.0 / 0.6)));
  const Scenario scenario(Deployment::perimeter(width, height, 0.6, num_links),
                          ChannelConfig{}, seed);
  const Deployment& d = scenario.deployment();

  std::printf("=== TafLoc survey plan for a %.1f x %.1f m area ===\n", width, height);
  std::printf("%zu links, %zu grids of %.1f m\n\n", d.num_links(), d.num_grids(),
              d.grid().cell_size());

  // Plan from the noise-free fingerprint structure (at deployment time
  // one would run the initial survey; the rank barely differs).
  const Matrix structure = scenario.collector().ground_truth(0.0);
  const std::size_t refs = suggest_reference_count(structure, 1e-3);
  const auto chosen = select_reference_locations(structure, refs, ReferencePolicy::QrPivot);

  const SurveyCostModel cost;
  AsciiTable table;
  table.set_header({"quantity", "value"});
  table.add_row({"initial full survey", AsciiTable::num(cost.hours_for_grids(d.num_grids()), 2) +
                                            " h (one-time)"});
  table.add_row({"reference locations", std::to_string(refs) + " of " +
                                            std::to_string(d.num_grids()) + " grids"});
  table.add_row({"each refresh", AsciiTable::num(cost.reference_survey_hours(refs), 2) + " h"});
  table.add_row({"refresh speedup",
                 AsciiTable::num(cost.hours_for_grids(d.num_grids()) /
                                     cost.reference_survey_hours(refs),
                                 1) +
                     "x"});
  std::fputs(table.render().c_str(), stdout);

  // ASCII map: '#' = reference grid to re-survey, '.' = reconstructed.
  std::printf("\nreference map (north up; '#' = survey on refresh, '.' = reconstructed):\n");
  const GridMap& grid = d.grid();
  std::vector<bool> is_ref(grid.num_cells(), false);
  for (std::size_t j : chosen) is_ref[j] = true;
  for (std::size_t row = grid.ny(); row > 0; --row) {
    std::string line = "  ";
    for (std::size_t ix = 0; ix < grid.nx(); ++ix) {
      line += is_ref[grid.index(ix, row - 1)] ? '#' : '.';
    }
    std::printf("%s\n", line.c_str());
  }
  std::printf("\nwalk order (QR-pivot priority): ");
  for (std::size_t k = 0; k < chosen.size(); ++k) {
    const Point2 c = grid.center(chosen[k]);
    std::printf("(%.1f,%.1f)%s", c.x, c.y, k + 1 < chosen.size() ? " " : "\n");
  }
  return 0;
}
