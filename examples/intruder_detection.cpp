// Intruder detection (the paper's second motivating application): an
// empty monitored area is watched through its link RSS; a person
// entering cannot avoid disturbing the links.  The library's
// PresenceDetector (threshold auto-calibrated from empty-room scans,
// with hysteresis) decides presence, then TafLoc localizes the
// intruder.  Detection must keep working months after calibration, so
// the ambient baseline is refreshed with the same cheap scans TafLoc's
// updates already need.
//
// Run:  ./intruder_detection [--seed=N] [--days=T] [--trials=N]
#include <cstdio>

#include "tafloc/tafloc.h"
#include "tafloc/util/cli.h"
#include "tafloc/util/stats.h"
#include "tafloc/util/table.h"

int main(int argc, char** argv) {
  using namespace tafloc;
  const ArgParser args(argc, argv);
  const auto seed = static_cast<std::uint64_t>(args.get_long("seed", 3));
  const double days = args.get_double("days", 90.0);
  const auto trials = static_cast<std::size_t>(args.get_long("trials", 40));

  const Scenario scenario = Scenario::paper_room(seed);
  Rng rng(seed);

  TafLocSystem tafloc(scenario.deployment());
  tafloc.calibrate(scenario.collector().survey_all(0.0, rng),
                   scenario.collector().ambient_scan(0.0, rng), 0.0);
  tafloc.update_with_collector(scenario.collector(), days, rng);

  // Presence detection against the CURRENT ambient baseline, with its
  // threshold calibrated from a handful of empty-room bursts.
  PresenceDetector presence(Vector(tafloc.database().ambient()));
  for (int i = 0; i < 10; ++i)
    presence.calibrate_empty(scenario.collector().observe_ambient(days, rng));

  // Trials alternate empty room / intruder present.
  std::size_t true_positives = 0, false_negatives = 0, false_positives = 0,
              true_negatives = 0;
  std::vector<double> localization_errors;

  for (std::size_t trial = 0; trial < trials; ++trial) {
    const bool intruder_present = trial % 2 == 0;
    Vector rss;
    Point2 truth{};
    if (intruder_present) {
      truth = random_positions(scenario.deployment().grid(), 1, rng).front();
      rss = scenario.collector().observe(truth, days, rng);
    } else {
      rss = scenario.collector().observe_ambient(days, rng);
    }

    const bool detected = presence.is_present(rss);
    if (intruder_present && detected) {
      ++true_positives;
      localization_errors.push_back(distance(tafloc.localize(rss), truth));
    } else if (intruder_present) {
      ++false_negatives;
    } else if (detected) {
      ++false_positives;
    } else {
      ++true_negatives;
    }
  }

  std::printf("=== intruder detection at day %.0f (%zu trials) ===\n", days, trials);
  AsciiTable table;
  table.set_header({"metric", "value"});
  table.add_row({"auto-calibrated threshold",
                 AsciiTable::num(presence.threshold(), 2) + " dB RMS dynamics"});
  table.add_row({"true positives", std::to_string(true_positives)});
  table.add_row({"false negatives", std::to_string(false_negatives)});
  table.add_row({"false positives", std::to_string(false_positives)});
  table.add_row({"true negatives", std::to_string(true_negatives)});
  if (!localization_errors.empty()) {
    table.add_row({"median localization error",
                   AsciiTable::num(median(localization_errors), 2) + " m"});
    table.add_row({"mean localization error",
                   AsciiTable::num(mean(localization_errors), 2) + " m"});
  }
  std::fputs(table.render().c_str(), stdout);
  return 0;
}
