// Quickstart: the complete TafLoc lifecycle in ~60 lines.
//
//   1. deploy links and a grid (the paper's Fig. 2 room),
//   2. calibrate once from a full fingerprint survey,
//   3. weeks later, refresh the database by re-surveying ONLY the
//      reference locations (plus one target-free ambient scan),
//   4. localize a device-free target from real-time RSS.
//
// Run:  ./quickstart [--seed=N] [--days=T] [--telemetry=PATH]
//
// With --telemetry=PATH the system's metric registry -- stage spans,
// solver iteration counters, scheduler staleness, per-query latency --
// is exported as JSONL (one JSON object per line) to PATH after the
// lifecycle completes ("-" prints it to stdout).
#include <cstdio>
#include <fstream>
#include <string>

#include "tafloc/tafloc.h"
#include "tafloc/util/cli.h"

int main(int argc, char** argv) {
  using namespace tafloc;
  const ArgParser args(argc, argv);
  const auto seed = static_cast<std::uint64_t>(args.get_long("seed", 42));
  const double days = args.get_double("days", 45.0);
  const std::string telemetry_path = args.get_string("telemetry", "");

  // 1. Deployment + simulated radio environment (stands in for real
  //    WiFi hardware; swap Channel/FingerprintCollector for your own
  //    measurement plumbing on a real testbed).
  const Scenario scenario = Scenario::paper_room(seed);
  const Deployment& room = scenario.deployment();
  std::printf("room: %.1f x %.1f m, %zu links, %zu grids of %.1f m\n", room.grid().width(),
              room.grid().height(), room.num_links(), room.num_grids(),
              room.grid().cell_size());

  // 2. One-time calibration from a full survey at day 0.
  Rng rng(seed);
  TafLocSystem tafloc(room);
  const Matrix survey = scenario.collector().survey_all(0.0, rng);
  Vector ambient = scenario.collector().ambient_scan(0.0, rng);
  tafloc.calibrate(survey, std::move(ambient), 0.0);
  std::printf("calibrated: %zu reference locations chosen (matrix rank), %.0f%% of grids\n",
              tafloc.reference_locations().size(),
              100.0 * static_cast<double>(tafloc.reference_locations().size()) /
                  static_cast<double>(room.num_grids()));

  // 3. `days` later the fingerprints have drifted.  The scheduler
  //    watches free ambient scans and decides when the drift warrants a
  //    refresh (here we scan every 5 simulated days until it triggers).
  UpdateScheduler scheduler(tafloc.database().ambient(), 0.0);
  scheduler.attach_telemetry(&tafloc.telemetry());
  double update_day = days;
  for (double t = 5.0; t <= days; t += 5.0) {
    const Vector scan = scenario.collector().ambient_scan(t, rng);
    if (scheduler.observe_ambient(scan, t)) {
      update_day = t;
      break;
    }
  }
  std::printf("scheduler: staleness %.2f dB -> update at day %.0f\n",
              scheduler.estimated_staleness_db(), update_day);
  const auto report = tafloc.update_with_collector(scenario.collector(), update_day, rng);
  scheduler.notify_updated(tafloc.database().ambient(), update_day);
  const SurveyCostModel cost;
  std::printf("day %.0f update: surveyed %zu grids (%.2f h) instead of %zu (%.2f h); "
              "solver: %zu outer iterations, converged=%s\n",
              update_day, report.references_surveyed,
              cost.reference_survey_hours(report.references_surveyed), room.num_grids(),
              cost.hours_for_grids(room.num_grids()), report.solver.outer_iterations,
              report.solver.converged ? "yes" : "no");

  // 4. Localize a target that carries no device.
  const Point2 truth{4.1, 2.3};
  const Vector rss = scenario.collector().observe(truth, days, rng);
  const Point2 estimate = tafloc.localize(rss);
  std::printf("target at (%.2f, %.2f) -> estimate (%.2f, %.2f), error %.2f m\n", truth.x,
              truth.y, estimate.x, estimate.y, distance(estimate, truth));

  // 5. Optional: export this run's telemetry as JSONL.
  if (!telemetry_path.empty()) {
    const std::string snapshot = tafloc.telemetry_snapshot_json();
    if (telemetry_path == "-") {
      std::fputs(snapshot.c_str(), stdout);
    } else {
      std::ofstream out(telemetry_path);
      if (!out) {
        std::fprintf(stderr, "cannot open '%s' for writing\n", telemetry_path.c_str());
        return 1;
      }
      out << snapshot;
      std::printf("telemetry: %zu metrics -> %s\n", tafloc.telemetry().size(),
                  telemetry_path.c_str());
    }
  }
  return 0;
}
