// Warehouse monitoring: a larger area (default 12 m x 12 m) watched for
// months with zero scheduled maintenance.  The UpdateScheduler watches
// free ambient scans and triggers TafLoc's low-cost reference re-survey
// only when the environment has actually drifted; the PresenceDetector
// gates localization so an empty warehouse produces no phantom tracks.
//
// Run:  ./warehouse_monitor [--edge=E] [--seed=N] [--horizon=D]
#include <cstdio>
#include <string>

#include "tafloc/tafloc.h"
#include "tafloc/util/cli.h"
#include "tafloc/util/table.h"

int main(int argc, char** argv) {
  using namespace tafloc;
  const ArgParser args(argc, argv);
  const double edge = args.get_double("edge", 12.0);
  const auto seed = static_cast<std::uint64_t>(args.get_long("seed", 11));
  const double horizon = args.get_double("horizon", 120.0);

  const Scenario scenario = Scenario::square_area(edge, seed);
  Rng rng(seed);
  const SurveyCostModel cost;

  // Day 0: full survey + calibration of all three components.
  TafLocSystem tafloc(scenario.deployment());
  tafloc.calibrate(scenario.collector().survey_all(0.0, rng),
                   scenario.collector().ambient_scan(0.0, rng), 0.0);

  SchedulerConfig sched_cfg;
  sched_cfg.staleness_threshold_db = 3.0;
  sched_cfg.max_interval_days = 60.0;
  UpdateScheduler scheduler(Vector(tafloc.database().ambient()), 0.0, sched_cfg);

  PresenceDetector presence(Vector(tafloc.database().ambient()));
  for (int i = 0; i < 8; ++i) presence.calibrate_empty(scenario.collector().observe_ambient(0.0, rng));

  std::printf("=== warehouse monitor: %.0f x %.0f m, %zu links, %zu grids ===\n", edge, edge,
              scenario.deployment().num_links(), scenario.deployment().num_grids());
  std::printf("initial survey: %.1f h; refresh cost: %.2f h per update\n\n",
              cost.hours_for_grids(scenario.deployment().num_grids()),
              cost.reference_survey_hours(tafloc.reference_locations().size()));

  AsciiTable timeline;
  timeline.set_header({"day", "ambient drift", "action", "check"});
  double total_maintenance_h = 0.0;

  for (double t = 10.0; t <= horizon; t += 10.0) {
    Vector ambient = scenario.collector().ambient_scan(t, rng);
    // Ambient scans are free and the room is known empty when they run:
    // keep the presence baseline current every time (only fingerprints
    // need the scheduler's judgement).
    presence.set_ambient(Vector(ambient));
    std::string action = "-";
    if (scheduler.observe_ambient(ambient, t)) {
      const auto report = tafloc.update_with_collector(scenario.collector(), t, rng);
      scheduler.notify_updated(Vector(tafloc.database().ambient()), t);
      total_maintenance_h += cost.reference_survey_hours(report.references_surveyed);
      action = "refresh (" + std::to_string(report.references_surveyed) + " grids)";
    }

    // Spot check: empty scan must stay quiet; an intruder must be seen
    // and localized.
    std::string check;
    const Vector empty_obs = scenario.collector().observe_ambient(t, rng);
    const bool false_alarm = presence.is_present(empty_obs);
    const Point2 truth = random_positions(scenario.deployment().grid(), 1, rng).front();
    const Vector hit_obs = scenario.collector().observe(truth, t, rng);
    if (false_alarm) {
      check = "FALSE ALARM on empty scan";
    } else if (!presence.is_present(hit_obs)) {
      check = "missed intruder";
    } else {
      const double err = distance(tafloc.localize(hit_obs), truth);
      check = "intruder localized, err " + AsciiTable::num(err, 2) + " m";
    }
    timeline.add_row({AsciiTable::num(t, 0),
                      AsciiTable::num(scheduler.estimated_staleness_db(), 2) + " dB", action,
                      check});
  }

  std::fputs(timeline.render().c_str(), stdout);
  std::printf("\ntotal maintenance over %.0f days: %.2f h (full re-surveys would cost %.1f h"
              " each)\n",
              horizon, total_maintenance_h,
              cost.hours_for_grids(scenario.deployment().num_grids()));
  return 0;
}
