// Elderly care (the paper's motivating application): continuously track
// a resident who wears no device, raise an alert when they dwell in a
// risky zone (e.g. on the floor by the bed) for too long, and keep the
// fingerprint database fresh with TafLoc's low-cost updates so the
// deployment keeps working months after installation.
//
// Run:  ./elderly_care [--seed=N] [--days=T] [--steps=N]
#include <cstdio>
#include <string>

#include "tafloc/tafloc.h"
#include "tafloc/util/cli.h"
#include "tafloc/util/table.h"

namespace {

using namespace tafloc;

/// A rectangular named zone of the room.
struct Zone {
  const char* name;
  double x0, y0, x1, y1;
  bool contains(Point2 p) const { return p.x >= x0 && p.x < x1 && p.y >= y0 && p.y < y1; }
};

}  // namespace

int main(int argc, char** argv) {
  const ArgParser args(argc, argv);
  const auto seed = static_cast<std::uint64_t>(args.get_long("seed", 7));
  const double days = args.get_double("days", 60.0);
  const auto steps = static_cast<std::size_t>(args.get_long("steps", 60));

  const Scenario scenario = Scenario::paper_room(seed);
  Rng rng(seed);

  // Calibrate once, then run a low-cost update at `days` -- the
  // deployment has been unattended for two months.
  TafLocSystem tafloc(scenario.deployment());
  tafloc.calibrate(scenario.collector().survey_all(0.0, rng),
                   scenario.collector().ambient_scan(0.0, rng), 0.0);
  tafloc.update_with_collector(scenario.collector(), days, rng);

  const Zone zones[] = {
      {"bed", 0.0, 0.0, 2.4, 1.8},
      {"bathroom door", 6.0, 3.6, 7.2, 4.8},
      {"living area", 2.4, 0.0, 6.0, 4.8},
  };
  const std::size_t dwell_alert_steps = 12;  // ~12 s of standing still near the bed

  // The resident wanders; we track with EMA smoothing (device-free
  // targets move slowly relative to the observation rate).
  const auto walk = waypoint_walk(scenario.deployment().grid(), steps, 0.6, 1.0, rng);
  EmaTracker tracker(0.45);

  AsciiTable table;
  table.set_header({"t", "true pos", "estimate", "error", "zone", "note"});
  std::size_t bed_dwell = 0;
  double total_error = 0.0;
  std::size_t alerts = 0;

  for (std::size_t t = 0; t < walk.size(); ++t) {
    const Vector rss = scenario.collector().observe(walk[t], days, rng);
    const Point2 smoothed = tracker.update(tafloc.localize(rss));
    const double err = distance(smoothed, walk[t]);
    total_error += err;

    const char* zone_name = "-";
    for (const Zone& z : zones) {
      if (z.contains(smoothed)) {
        zone_name = z.name;
        break;
      }
    }
    std::string note;
    if (std::string(zone_name) == "bed") {
      if (++bed_dwell == dwell_alert_steps) {
        note = "ALERT: prolonged dwell by the bed";
        ++alerts;
      }
    } else {
      bed_dwell = 0;
    }

    if (t % 5 == 0 || !note.empty()) {
      table.add_row({std::to_string(t) + " s",
                     "(" + AsciiTable::num(walk[t].x, 1) + ", " + AsciiTable::num(walk[t].y, 1) +
                         ")",
                     "(" + AsciiTable::num(smoothed.x, 1) + ", " +
                         AsciiTable::num(smoothed.y, 1) + ")",
                     AsciiTable::num(err, 2) + " m", zone_name, note});
    }
  }

  std::printf("=== elderly care tracking, day %.0f (database refreshed by TafLoc) ===\n",
              days);
  std::fputs(table.render().c_str(), stdout);
  std::printf("mean tracking error: %.2f m over %zu steps; dwell alerts: %zu\n",
              total_error / static_cast<double>(walk.size()), walk.size(), alerts);
  return 0;
}
