file(REMOVE_RECURSE
  "CMakeFiles/tafloc_bench_util.dir/bench_util.cpp.o"
  "CMakeFiles/tafloc_bench_util.dir/bench_util.cpp.o.d"
  "libtafloc_bench_util.a"
  "libtafloc_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tafloc_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
