# Empty compiler generated dependencies file for tafloc_bench_util.
# This may be replaced when dependencies are built.
