file(REMOVE_RECURSE
  "libtafloc_bench_util.a"
)
