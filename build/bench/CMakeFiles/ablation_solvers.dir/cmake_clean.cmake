file(REMOVE_RECURSE
  "CMakeFiles/ablation_solvers.dir/ablation_solvers.cpp.o"
  "CMakeFiles/ablation_solvers.dir/ablation_solvers.cpp.o.d"
  "ablation_solvers"
  "ablation_solvers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_solvers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
