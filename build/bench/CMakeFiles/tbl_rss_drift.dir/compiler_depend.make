# Empty compiler generated dependencies file for tbl_rss_drift.
# This may be replaced when dependencies are built.
