file(REMOVE_RECURSE
  "CMakeFiles/tbl_rss_drift.dir/tbl_rss_drift.cpp.o"
  "CMakeFiles/tbl_rss_drift.dir/tbl_rss_drift.cpp.o.d"
  "tbl_rss_drift"
  "tbl_rss_drift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbl_rss_drift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
