file(REMOVE_RECURSE
  "CMakeFiles/fig5_localization_cdf.dir/fig5_localization_cdf.cpp.o"
  "CMakeFiles/fig5_localization_cdf.dir/fig5_localization_cdf.cpp.o.d"
  "fig5_localization_cdf"
  "fig5_localization_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_localization_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
