# Empty dependencies file for fig5_localization_cdf.
# This may be replaced when dependencies are built.
