# Empty dependencies file for fig3_reconstruction_error.
# This may be replaced when dependencies are built.
