file(REMOVE_RECURSE
  "CMakeFiles/ablation_reference_selection.dir/ablation_reference_selection.cpp.o"
  "CMakeFiles/ablation_reference_selection.dir/ablation_reference_selection.cpp.o.d"
  "ablation_reference_selection"
  "ablation_reference_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_reference_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
