# Empty dependencies file for microbench_linalg.
# This may be replaced when dependencies are built.
