file(REMOVE_RECURSE
  "CMakeFiles/microbench_linalg.dir/microbench_linalg.cpp.o"
  "CMakeFiles/microbench_linalg.dir/microbench_linalg.cpp.o.d"
  "microbench_linalg"
  "microbench_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microbench_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
