# Empty dependencies file for ablation_update_schedule.
# This may be replaced when dependencies are built.
