file(REMOVE_RECURSE
  "CMakeFiles/ablation_update_schedule.dir/ablation_update_schedule.cpp.o"
  "CMakeFiles/ablation_update_schedule.dir/ablation_update_schedule.cpp.o.d"
  "ablation_update_schedule"
  "ablation_update_schedule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_update_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
