# Empty dependencies file for ablation_objective_terms.
# This may be replaced when dependencies are built.
