file(REMOVE_RECURSE
  "CMakeFiles/ablation_objective_terms.dir/ablation_objective_terms.cpp.o"
  "CMakeFiles/ablation_objective_terms.dir/ablation_objective_terms.cpp.o.d"
  "ablation_objective_terms"
  "ablation_objective_terms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_objective_terms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
