# Empty dependencies file for fig4_update_time_cost.
# This may be replaced when dependencies are built.
