file(REMOVE_RECURSE
  "CMakeFiles/fig4_update_time_cost.dir/fig4_update_time_cost.cpp.o"
  "CMakeFiles/fig4_update_time_cost.dir/fig4_update_time_cost.cpp.o.d"
  "fig4_update_time_cost"
  "fig4_update_time_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_update_time_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
