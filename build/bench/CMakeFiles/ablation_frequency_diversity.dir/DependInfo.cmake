
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_frequency_diversity.cpp" "bench/CMakeFiles/ablation_frequency_diversity.dir/ablation_frequency_diversity.cpp.o" "gcc" "bench/CMakeFiles/ablation_frequency_diversity.dir/ablation_frequency_diversity.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/tafloc_bench_util.dir/DependInfo.cmake"
  "/root/repo/build/src/tafloc/CMakeFiles/tafloc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/recon/CMakeFiles/tafloc_recon.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/tafloc_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/loc/CMakeFiles/tafloc_loc.dir/DependInfo.cmake"
  "/root/repo/build/src/fingerprint/CMakeFiles/tafloc_fingerprint.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tafloc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/rf/CMakeFiles/tafloc_rf.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/tafloc_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tafloc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
