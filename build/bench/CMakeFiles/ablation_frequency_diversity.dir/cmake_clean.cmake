file(REMOVE_RECURSE
  "CMakeFiles/ablation_frequency_diversity.dir/ablation_frequency_diversity.cpp.o"
  "CMakeFiles/ablation_frequency_diversity.dir/ablation_frequency_diversity.cpp.o.d"
  "ablation_frequency_diversity"
  "ablation_frequency_diversity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_frequency_diversity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
