# Empty compiler generated dependencies file for ablation_frequency_diversity.
# This may be replaced when dependencies are built.
