file(REMOVE_RECURSE
  "libtafloc_core.a"
)
