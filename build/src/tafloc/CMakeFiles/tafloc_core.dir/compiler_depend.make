# Empty compiler generated dependencies file for tafloc_core.
# This may be replaced when dependencies are built.
