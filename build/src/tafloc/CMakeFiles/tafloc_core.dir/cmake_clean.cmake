file(REMOVE_RECURSE
  "CMakeFiles/tafloc_core.dir/src/scheduler.cpp.o"
  "CMakeFiles/tafloc_core.dir/src/scheduler.cpp.o.d"
  "CMakeFiles/tafloc_core.dir/src/system.cpp.o"
  "CMakeFiles/tafloc_core.dir/src/system.cpp.o.d"
  "libtafloc_core.a"
  "libtafloc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tafloc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
