file(REMOVE_RECURSE
  "libtafloc_fingerprint.a"
)
