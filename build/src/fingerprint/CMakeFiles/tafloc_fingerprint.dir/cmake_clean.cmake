file(REMOVE_RECURSE
  "CMakeFiles/tafloc_fingerprint.dir/src/database.cpp.o"
  "CMakeFiles/tafloc_fingerprint.dir/src/database.cpp.o.d"
  "CMakeFiles/tafloc_fingerprint.dir/src/distortion.cpp.o"
  "CMakeFiles/tafloc_fingerprint.dir/src/distortion.cpp.o.d"
  "CMakeFiles/tafloc_fingerprint.dir/src/reference.cpp.o"
  "CMakeFiles/tafloc_fingerprint.dir/src/reference.cpp.o.d"
  "libtafloc_fingerprint.a"
  "libtafloc_fingerprint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tafloc_fingerprint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
