
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fingerprint/src/database.cpp" "src/fingerprint/CMakeFiles/tafloc_fingerprint.dir/src/database.cpp.o" "gcc" "src/fingerprint/CMakeFiles/tafloc_fingerprint.dir/src/database.cpp.o.d"
  "/root/repo/src/fingerprint/src/distortion.cpp" "src/fingerprint/CMakeFiles/tafloc_fingerprint.dir/src/distortion.cpp.o" "gcc" "src/fingerprint/CMakeFiles/tafloc_fingerprint.dir/src/distortion.cpp.o.d"
  "/root/repo/src/fingerprint/src/reference.cpp" "src/fingerprint/CMakeFiles/tafloc_fingerprint.dir/src/reference.cpp.o" "gcc" "src/fingerprint/CMakeFiles/tafloc_fingerprint.dir/src/reference.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/tafloc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/tafloc_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/rf/CMakeFiles/tafloc_rf.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tafloc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
