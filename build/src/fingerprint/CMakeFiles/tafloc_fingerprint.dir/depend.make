# Empty dependencies file for tafloc_fingerprint.
# This may be replaced when dependencies are built.
