file(REMOVE_RECURSE
  "libtafloc_sim.a"
)
