file(REMOVE_RECURSE
  "CMakeFiles/tafloc_sim.dir/src/collector.cpp.o"
  "CMakeFiles/tafloc_sim.dir/src/collector.cpp.o.d"
  "CMakeFiles/tafloc_sim.dir/src/deployment.cpp.o"
  "CMakeFiles/tafloc_sim.dir/src/deployment.cpp.o.d"
  "CMakeFiles/tafloc_sim.dir/src/grid.cpp.o"
  "CMakeFiles/tafloc_sim.dir/src/grid.cpp.o.d"
  "CMakeFiles/tafloc_sim.dir/src/scenario.cpp.o"
  "CMakeFiles/tafloc_sim.dir/src/scenario.cpp.o.d"
  "CMakeFiles/tafloc_sim.dir/src/survey_cost.cpp.o"
  "CMakeFiles/tafloc_sim.dir/src/survey_cost.cpp.o.d"
  "CMakeFiles/tafloc_sim.dir/src/trace.cpp.o"
  "CMakeFiles/tafloc_sim.dir/src/trace.cpp.o.d"
  "libtafloc_sim.a"
  "libtafloc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tafloc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
