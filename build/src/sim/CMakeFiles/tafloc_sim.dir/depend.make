# Empty dependencies file for tafloc_sim.
# This may be replaced when dependencies are built.
