
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/src/collector.cpp" "src/sim/CMakeFiles/tafloc_sim.dir/src/collector.cpp.o" "gcc" "src/sim/CMakeFiles/tafloc_sim.dir/src/collector.cpp.o.d"
  "/root/repo/src/sim/src/deployment.cpp" "src/sim/CMakeFiles/tafloc_sim.dir/src/deployment.cpp.o" "gcc" "src/sim/CMakeFiles/tafloc_sim.dir/src/deployment.cpp.o.d"
  "/root/repo/src/sim/src/grid.cpp" "src/sim/CMakeFiles/tafloc_sim.dir/src/grid.cpp.o" "gcc" "src/sim/CMakeFiles/tafloc_sim.dir/src/grid.cpp.o.d"
  "/root/repo/src/sim/src/scenario.cpp" "src/sim/CMakeFiles/tafloc_sim.dir/src/scenario.cpp.o" "gcc" "src/sim/CMakeFiles/tafloc_sim.dir/src/scenario.cpp.o.d"
  "/root/repo/src/sim/src/survey_cost.cpp" "src/sim/CMakeFiles/tafloc_sim.dir/src/survey_cost.cpp.o" "gcc" "src/sim/CMakeFiles/tafloc_sim.dir/src/survey_cost.cpp.o.d"
  "/root/repo/src/sim/src/trace.cpp" "src/sim/CMakeFiles/tafloc_sim.dir/src/trace.cpp.o" "gcc" "src/sim/CMakeFiles/tafloc_sim.dir/src/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/tafloc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/tafloc_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/rf/CMakeFiles/tafloc_rf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
