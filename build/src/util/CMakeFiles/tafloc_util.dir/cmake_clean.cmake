file(REMOVE_RECURSE
  "CMakeFiles/tafloc_util.dir/src/cdf.cpp.o"
  "CMakeFiles/tafloc_util.dir/src/cdf.cpp.o.d"
  "CMakeFiles/tafloc_util.dir/src/cli.cpp.o"
  "CMakeFiles/tafloc_util.dir/src/cli.cpp.o.d"
  "CMakeFiles/tafloc_util.dir/src/csv.cpp.o"
  "CMakeFiles/tafloc_util.dir/src/csv.cpp.o.d"
  "CMakeFiles/tafloc_util.dir/src/interp.cpp.o"
  "CMakeFiles/tafloc_util.dir/src/interp.cpp.o.d"
  "CMakeFiles/tafloc_util.dir/src/log.cpp.o"
  "CMakeFiles/tafloc_util.dir/src/log.cpp.o.d"
  "CMakeFiles/tafloc_util.dir/src/rng.cpp.o"
  "CMakeFiles/tafloc_util.dir/src/rng.cpp.o.d"
  "CMakeFiles/tafloc_util.dir/src/stats.cpp.o"
  "CMakeFiles/tafloc_util.dir/src/stats.cpp.o.d"
  "CMakeFiles/tafloc_util.dir/src/table.cpp.o"
  "CMakeFiles/tafloc_util.dir/src/table.cpp.o.d"
  "libtafloc_util.a"
  "libtafloc_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tafloc_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
