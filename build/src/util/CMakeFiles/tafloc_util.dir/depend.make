# Empty dependencies file for tafloc_util.
# This may be replaced when dependencies are built.
