file(REMOVE_RECURSE
  "libtafloc_util.a"
)
