file(REMOVE_RECURSE
  "CMakeFiles/tafloc_baselines.dir/src/rass.cpp.o"
  "CMakeFiles/tafloc_baselines.dir/src/rass.cpp.o.d"
  "CMakeFiles/tafloc_baselines.dir/src/rti.cpp.o"
  "CMakeFiles/tafloc_baselines.dir/src/rti.cpp.o.d"
  "libtafloc_baselines.a"
  "libtafloc_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tafloc_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
