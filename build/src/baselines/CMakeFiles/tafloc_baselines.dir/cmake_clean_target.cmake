file(REMOVE_RECURSE
  "libtafloc_baselines.a"
)
