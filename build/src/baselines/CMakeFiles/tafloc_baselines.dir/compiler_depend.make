# Empty compiler generated dependencies file for tafloc_baselines.
# This may be replaced when dependencies are built.
