file(REMOVE_RECURSE
  "CMakeFiles/tafloc_linalg.dir/src/cg.cpp.o"
  "CMakeFiles/tafloc_linalg.dir/src/cg.cpp.o.d"
  "CMakeFiles/tafloc_linalg.dir/src/cholesky.cpp.o"
  "CMakeFiles/tafloc_linalg.dir/src/cholesky.cpp.o.d"
  "CMakeFiles/tafloc_linalg.dir/src/eig.cpp.o"
  "CMakeFiles/tafloc_linalg.dir/src/eig.cpp.o.d"
  "CMakeFiles/tafloc_linalg.dir/src/io.cpp.o"
  "CMakeFiles/tafloc_linalg.dir/src/io.cpp.o.d"
  "CMakeFiles/tafloc_linalg.dir/src/lsq.cpp.o"
  "CMakeFiles/tafloc_linalg.dir/src/lsq.cpp.o.d"
  "CMakeFiles/tafloc_linalg.dir/src/lu.cpp.o"
  "CMakeFiles/tafloc_linalg.dir/src/lu.cpp.o.d"
  "CMakeFiles/tafloc_linalg.dir/src/matrix.cpp.o"
  "CMakeFiles/tafloc_linalg.dir/src/matrix.cpp.o.d"
  "CMakeFiles/tafloc_linalg.dir/src/ops.cpp.o"
  "CMakeFiles/tafloc_linalg.dir/src/ops.cpp.o.d"
  "CMakeFiles/tafloc_linalg.dir/src/qr.cpp.o"
  "CMakeFiles/tafloc_linalg.dir/src/qr.cpp.o.d"
  "CMakeFiles/tafloc_linalg.dir/src/sparse.cpp.o"
  "CMakeFiles/tafloc_linalg.dir/src/sparse.cpp.o.d"
  "CMakeFiles/tafloc_linalg.dir/src/svd.cpp.o"
  "CMakeFiles/tafloc_linalg.dir/src/svd.cpp.o.d"
  "CMakeFiles/tafloc_linalg.dir/src/vector_ops.cpp.o"
  "CMakeFiles/tafloc_linalg.dir/src/vector_ops.cpp.o.d"
  "libtafloc_linalg.a"
  "libtafloc_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tafloc_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
