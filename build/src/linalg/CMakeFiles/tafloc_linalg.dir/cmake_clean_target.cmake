file(REMOVE_RECURSE
  "libtafloc_linalg.a"
)
