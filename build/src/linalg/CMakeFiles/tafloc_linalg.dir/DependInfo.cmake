
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/linalg/src/cg.cpp" "src/linalg/CMakeFiles/tafloc_linalg.dir/src/cg.cpp.o" "gcc" "src/linalg/CMakeFiles/tafloc_linalg.dir/src/cg.cpp.o.d"
  "/root/repo/src/linalg/src/cholesky.cpp" "src/linalg/CMakeFiles/tafloc_linalg.dir/src/cholesky.cpp.o" "gcc" "src/linalg/CMakeFiles/tafloc_linalg.dir/src/cholesky.cpp.o.d"
  "/root/repo/src/linalg/src/eig.cpp" "src/linalg/CMakeFiles/tafloc_linalg.dir/src/eig.cpp.o" "gcc" "src/linalg/CMakeFiles/tafloc_linalg.dir/src/eig.cpp.o.d"
  "/root/repo/src/linalg/src/io.cpp" "src/linalg/CMakeFiles/tafloc_linalg.dir/src/io.cpp.o" "gcc" "src/linalg/CMakeFiles/tafloc_linalg.dir/src/io.cpp.o.d"
  "/root/repo/src/linalg/src/lsq.cpp" "src/linalg/CMakeFiles/tafloc_linalg.dir/src/lsq.cpp.o" "gcc" "src/linalg/CMakeFiles/tafloc_linalg.dir/src/lsq.cpp.o.d"
  "/root/repo/src/linalg/src/lu.cpp" "src/linalg/CMakeFiles/tafloc_linalg.dir/src/lu.cpp.o" "gcc" "src/linalg/CMakeFiles/tafloc_linalg.dir/src/lu.cpp.o.d"
  "/root/repo/src/linalg/src/matrix.cpp" "src/linalg/CMakeFiles/tafloc_linalg.dir/src/matrix.cpp.o" "gcc" "src/linalg/CMakeFiles/tafloc_linalg.dir/src/matrix.cpp.o.d"
  "/root/repo/src/linalg/src/ops.cpp" "src/linalg/CMakeFiles/tafloc_linalg.dir/src/ops.cpp.o" "gcc" "src/linalg/CMakeFiles/tafloc_linalg.dir/src/ops.cpp.o.d"
  "/root/repo/src/linalg/src/qr.cpp" "src/linalg/CMakeFiles/tafloc_linalg.dir/src/qr.cpp.o" "gcc" "src/linalg/CMakeFiles/tafloc_linalg.dir/src/qr.cpp.o.d"
  "/root/repo/src/linalg/src/sparse.cpp" "src/linalg/CMakeFiles/tafloc_linalg.dir/src/sparse.cpp.o" "gcc" "src/linalg/CMakeFiles/tafloc_linalg.dir/src/sparse.cpp.o.d"
  "/root/repo/src/linalg/src/svd.cpp" "src/linalg/CMakeFiles/tafloc_linalg.dir/src/svd.cpp.o" "gcc" "src/linalg/CMakeFiles/tafloc_linalg.dir/src/svd.cpp.o.d"
  "/root/repo/src/linalg/src/vector_ops.cpp" "src/linalg/CMakeFiles/tafloc_linalg.dir/src/vector_ops.cpp.o" "gcc" "src/linalg/CMakeFiles/tafloc_linalg.dir/src/vector_ops.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/tafloc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
