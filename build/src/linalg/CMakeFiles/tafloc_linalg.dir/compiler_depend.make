# Empty compiler generated dependencies file for tafloc_linalg.
# This may be replaced when dependencies are built.
