# Empty dependencies file for tafloc_rf.
# This may be replaced when dependencies are built.
