file(REMOVE_RECURSE
  "CMakeFiles/tafloc_rf.dir/src/channel.cpp.o"
  "CMakeFiles/tafloc_rf.dir/src/channel.cpp.o.d"
  "CMakeFiles/tafloc_rf.dir/src/drift.cpp.o"
  "CMakeFiles/tafloc_rf.dir/src/drift.cpp.o.d"
  "CMakeFiles/tafloc_rf.dir/src/geometry.cpp.o"
  "CMakeFiles/tafloc_rf.dir/src/geometry.cpp.o.d"
  "CMakeFiles/tafloc_rf.dir/src/noise.cpp.o"
  "CMakeFiles/tafloc_rf.dir/src/noise.cpp.o.d"
  "CMakeFiles/tafloc_rf.dir/src/pathloss.cpp.o"
  "CMakeFiles/tafloc_rf.dir/src/pathloss.cpp.o.d"
  "CMakeFiles/tafloc_rf.dir/src/shadowing.cpp.o"
  "CMakeFiles/tafloc_rf.dir/src/shadowing.cpp.o.d"
  "libtafloc_rf.a"
  "libtafloc_rf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tafloc_rf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
