file(REMOVE_RECURSE
  "libtafloc_rf.a"
)
