
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rf/src/channel.cpp" "src/rf/CMakeFiles/tafloc_rf.dir/src/channel.cpp.o" "gcc" "src/rf/CMakeFiles/tafloc_rf.dir/src/channel.cpp.o.d"
  "/root/repo/src/rf/src/drift.cpp" "src/rf/CMakeFiles/tafloc_rf.dir/src/drift.cpp.o" "gcc" "src/rf/CMakeFiles/tafloc_rf.dir/src/drift.cpp.o.d"
  "/root/repo/src/rf/src/geometry.cpp" "src/rf/CMakeFiles/tafloc_rf.dir/src/geometry.cpp.o" "gcc" "src/rf/CMakeFiles/tafloc_rf.dir/src/geometry.cpp.o.d"
  "/root/repo/src/rf/src/noise.cpp" "src/rf/CMakeFiles/tafloc_rf.dir/src/noise.cpp.o" "gcc" "src/rf/CMakeFiles/tafloc_rf.dir/src/noise.cpp.o.d"
  "/root/repo/src/rf/src/pathloss.cpp" "src/rf/CMakeFiles/tafloc_rf.dir/src/pathloss.cpp.o" "gcc" "src/rf/CMakeFiles/tafloc_rf.dir/src/pathloss.cpp.o.d"
  "/root/repo/src/rf/src/shadowing.cpp" "src/rf/CMakeFiles/tafloc_rf.dir/src/shadowing.cpp.o" "gcc" "src/rf/CMakeFiles/tafloc_rf.dir/src/shadowing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/tafloc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/tafloc_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
