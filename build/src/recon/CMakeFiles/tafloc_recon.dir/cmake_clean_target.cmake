file(REMOVE_RECURSE
  "libtafloc_recon.a"
)
