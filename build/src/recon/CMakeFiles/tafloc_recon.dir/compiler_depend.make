# Empty compiler generated dependencies file for tafloc_recon.
# This may be replaced when dependencies are built.
