
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/recon/src/error.cpp" "src/recon/CMakeFiles/tafloc_recon.dir/src/error.cpp.o" "gcc" "src/recon/CMakeFiles/tafloc_recon.dir/src/error.cpp.o.d"
  "/root/repo/src/recon/src/loli_ir.cpp" "src/recon/CMakeFiles/tafloc_recon.dir/src/loli_ir.cpp.o" "gcc" "src/recon/CMakeFiles/tafloc_recon.dir/src/loli_ir.cpp.o.d"
  "/root/repo/src/recon/src/lrr.cpp" "src/recon/CMakeFiles/tafloc_recon.dir/src/lrr.cpp.o" "gcc" "src/recon/CMakeFiles/tafloc_recon.dir/src/lrr.cpp.o.d"
  "/root/repo/src/recon/src/operators.cpp" "src/recon/CMakeFiles/tafloc_recon.dir/src/operators.cpp.o" "gcc" "src/recon/CMakeFiles/tafloc_recon.dir/src/operators.cpp.o.d"
  "/root/repo/src/recon/src/svt.cpp" "src/recon/CMakeFiles/tafloc_recon.dir/src/svt.cpp.o" "gcc" "src/recon/CMakeFiles/tafloc_recon.dir/src/svt.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/tafloc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/tafloc_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/fingerprint/CMakeFiles/tafloc_fingerprint.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tafloc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/rf/CMakeFiles/tafloc_rf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
