file(REMOVE_RECURSE
  "CMakeFiles/tafloc_recon.dir/src/error.cpp.o"
  "CMakeFiles/tafloc_recon.dir/src/error.cpp.o.d"
  "CMakeFiles/tafloc_recon.dir/src/loli_ir.cpp.o"
  "CMakeFiles/tafloc_recon.dir/src/loli_ir.cpp.o.d"
  "CMakeFiles/tafloc_recon.dir/src/lrr.cpp.o"
  "CMakeFiles/tafloc_recon.dir/src/lrr.cpp.o.d"
  "CMakeFiles/tafloc_recon.dir/src/operators.cpp.o"
  "CMakeFiles/tafloc_recon.dir/src/operators.cpp.o.d"
  "CMakeFiles/tafloc_recon.dir/src/svt.cpp.o"
  "CMakeFiles/tafloc_recon.dir/src/svt.cpp.o.d"
  "libtafloc_recon.a"
  "libtafloc_recon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tafloc_recon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
