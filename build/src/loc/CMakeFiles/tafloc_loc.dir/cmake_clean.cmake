file(REMOVE_RECURSE
  "CMakeFiles/tafloc_loc.dir/src/matcher.cpp.o"
  "CMakeFiles/tafloc_loc.dir/src/matcher.cpp.o.d"
  "CMakeFiles/tafloc_loc.dir/src/metrics.cpp.o"
  "CMakeFiles/tafloc_loc.dir/src/metrics.cpp.o.d"
  "CMakeFiles/tafloc_loc.dir/src/presence.cpp.o"
  "CMakeFiles/tafloc_loc.dir/src/presence.cpp.o.d"
  "CMakeFiles/tafloc_loc.dir/src/tracker.cpp.o"
  "CMakeFiles/tafloc_loc.dir/src/tracker.cpp.o.d"
  "libtafloc_loc.a"
  "libtafloc_loc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tafloc_loc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
