file(REMOVE_RECURSE
  "libtafloc_loc.a"
)
