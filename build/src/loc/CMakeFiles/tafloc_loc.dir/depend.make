# Empty dependencies file for tafloc_loc.
# This may be replaced when dependencies are built.
