# Empty compiler generated dependencies file for survey_planner.
# This may be replaced when dependencies are built.
