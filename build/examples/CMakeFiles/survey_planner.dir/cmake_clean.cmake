file(REMOVE_RECURSE
  "CMakeFiles/survey_planner.dir/survey_planner.cpp.o"
  "CMakeFiles/survey_planner.dir/survey_planner.cpp.o.d"
  "survey_planner"
  "survey_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/survey_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
