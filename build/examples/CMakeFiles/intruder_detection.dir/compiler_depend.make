# Empty compiler generated dependencies file for intruder_detection.
# This may be replaced when dependencies are built.
