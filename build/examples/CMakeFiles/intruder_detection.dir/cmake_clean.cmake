file(REMOVE_RECURSE
  "CMakeFiles/intruder_detection.dir/intruder_detection.cpp.o"
  "CMakeFiles/intruder_detection.dir/intruder_detection.cpp.o.d"
  "intruder_detection"
  "intruder_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/intruder_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
