# Empty compiler generated dependencies file for warehouse_monitor.
# This may be replaced when dependencies are built.
