file(REMOVE_RECURSE
  "CMakeFiles/warehouse_monitor.dir/warehouse_monitor.cpp.o"
  "CMakeFiles/warehouse_monitor.dir/warehouse_monitor.cpp.o.d"
  "warehouse_monitor"
  "warehouse_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/warehouse_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
