# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_linalg[1]_include.cmake")
include("/root/repo/build/tests/test_rf[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_fingerprint[1]_include.cmake")
include("/root/repo/build/tests/test_recon[1]_include.cmake")
include("/root/repo/build/tests/test_loc[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_system[1]_include.cmake")
