file(REMOVE_RECURSE
  "CMakeFiles/test_linalg.dir/test_linalg_cholesky_lu.cpp.o"
  "CMakeFiles/test_linalg.dir/test_linalg_cholesky_lu.cpp.o.d"
  "CMakeFiles/test_linalg.dir/test_linalg_eig.cpp.o"
  "CMakeFiles/test_linalg.dir/test_linalg_eig.cpp.o.d"
  "CMakeFiles/test_linalg.dir/test_linalg_io.cpp.o"
  "CMakeFiles/test_linalg.dir/test_linalg_io.cpp.o.d"
  "CMakeFiles/test_linalg.dir/test_linalg_lsq_cg.cpp.o"
  "CMakeFiles/test_linalg.dir/test_linalg_lsq_cg.cpp.o.d"
  "CMakeFiles/test_linalg.dir/test_linalg_matrix.cpp.o"
  "CMakeFiles/test_linalg.dir/test_linalg_matrix.cpp.o.d"
  "CMakeFiles/test_linalg.dir/test_linalg_ops.cpp.o"
  "CMakeFiles/test_linalg.dir/test_linalg_ops.cpp.o.d"
  "CMakeFiles/test_linalg.dir/test_linalg_qr.cpp.o"
  "CMakeFiles/test_linalg.dir/test_linalg_qr.cpp.o.d"
  "CMakeFiles/test_linalg.dir/test_linalg_sparse.cpp.o"
  "CMakeFiles/test_linalg.dir/test_linalg_sparse.cpp.o.d"
  "CMakeFiles/test_linalg.dir/test_linalg_svd.cpp.o"
  "CMakeFiles/test_linalg.dir/test_linalg_svd.cpp.o.d"
  "CMakeFiles/test_linalg.dir/test_linalg_vector_ops.cpp.o"
  "CMakeFiles/test_linalg.dir/test_linalg_vector_ops.cpp.o.d"
  "test_linalg"
  "test_linalg.pdb"
  "test_linalg[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
