file(REMOVE_RECURSE
  "CMakeFiles/test_sim.dir/test_sim_collector_cost.cpp.o"
  "CMakeFiles/test_sim.dir/test_sim_collector_cost.cpp.o.d"
  "CMakeFiles/test_sim.dir/test_sim_deployment.cpp.o"
  "CMakeFiles/test_sim.dir/test_sim_deployment.cpp.o.d"
  "CMakeFiles/test_sim.dir/test_sim_grid.cpp.o"
  "CMakeFiles/test_sim.dir/test_sim_grid.cpp.o.d"
  "CMakeFiles/test_sim.dir/test_sim_trace_scenario.cpp.o"
  "CMakeFiles/test_sim.dir/test_sim_trace_scenario.cpp.o.d"
  "test_sim"
  "test_sim.pdb"
  "test_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
