file(REMOVE_RECURSE
  "CMakeFiles/test_util.dir/test_util_cdf.cpp.o"
  "CMakeFiles/test_util.dir/test_util_cdf.cpp.o.d"
  "CMakeFiles/test_util.dir/test_util_interp.cpp.o"
  "CMakeFiles/test_util.dir/test_util_interp.cpp.o.d"
  "CMakeFiles/test_util.dir/test_util_io.cpp.o"
  "CMakeFiles/test_util.dir/test_util_io.cpp.o.d"
  "CMakeFiles/test_util.dir/test_util_rng.cpp.o"
  "CMakeFiles/test_util.dir/test_util_rng.cpp.o.d"
  "CMakeFiles/test_util.dir/test_util_stats.cpp.o"
  "CMakeFiles/test_util.dir/test_util_stats.cpp.o.d"
  "test_util"
  "test_util.pdb"
  "test_util[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
