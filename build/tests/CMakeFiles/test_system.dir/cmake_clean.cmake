file(REMOVE_RECURSE
  "CMakeFiles/test_system.dir/test_fault_injection.cpp.o"
  "CMakeFiles/test_system.dir/test_fault_injection.cpp.o.d"
  "CMakeFiles/test_system.dir/test_integration_pipeline.cpp.o"
  "CMakeFiles/test_system.dir/test_integration_pipeline.cpp.o.d"
  "CMakeFiles/test_system.dir/test_properties.cpp.o"
  "CMakeFiles/test_system.dir/test_properties.cpp.o.d"
  "CMakeFiles/test_system.dir/test_system_scheduler.cpp.o"
  "CMakeFiles/test_system.dir/test_system_scheduler.cpp.o.d"
  "CMakeFiles/test_system.dir/test_system_tafloc.cpp.o"
  "CMakeFiles/test_system.dir/test_system_tafloc.cpp.o.d"
  "test_system"
  "test_system.pdb"
  "test_system[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
