file(REMOVE_RECURSE
  "CMakeFiles/test_rf.dir/test_rf_channel.cpp.o"
  "CMakeFiles/test_rf.dir/test_rf_channel.cpp.o.d"
  "CMakeFiles/test_rf.dir/test_rf_drift_noise.cpp.o"
  "CMakeFiles/test_rf.dir/test_rf_drift_noise.cpp.o.d"
  "CMakeFiles/test_rf.dir/test_rf_geometry.cpp.o"
  "CMakeFiles/test_rf.dir/test_rf_geometry.cpp.o.d"
  "CMakeFiles/test_rf.dir/test_rf_pathloss_shadowing.cpp.o"
  "CMakeFiles/test_rf.dir/test_rf_pathloss_shadowing.cpp.o.d"
  "test_rf"
  "test_rf.pdb"
  "test_rf[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
