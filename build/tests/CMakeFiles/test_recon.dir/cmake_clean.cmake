file(REMOVE_RECURSE
  "CMakeFiles/test_recon.dir/test_recon_error.cpp.o"
  "CMakeFiles/test_recon.dir/test_recon_error.cpp.o.d"
  "CMakeFiles/test_recon.dir/test_recon_loli_ir.cpp.o"
  "CMakeFiles/test_recon.dir/test_recon_loli_ir.cpp.o.d"
  "CMakeFiles/test_recon.dir/test_recon_lrr.cpp.o"
  "CMakeFiles/test_recon.dir/test_recon_lrr.cpp.o.d"
  "CMakeFiles/test_recon.dir/test_recon_operators.cpp.o"
  "CMakeFiles/test_recon.dir/test_recon_operators.cpp.o.d"
  "CMakeFiles/test_recon.dir/test_recon_svt.cpp.o"
  "CMakeFiles/test_recon.dir/test_recon_svt.cpp.o.d"
  "test_recon"
  "test_recon.pdb"
  "test_recon[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_recon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
