// taflocd -- the multi-zone TafLoc serving daemon.
//
//   taflocd --config=/etc/tafloc/taflocd.conf [--socket=PATH]
//           [--telemetry-dir=DIR] [--poll-ms=50]
//
// One process supervises many zones (config.h describes the file
// format).  Each zone is a TafLocSystem + UpdateScheduler with its own
// durability directory; LoLi-IR recalibrations run on a supervised job
// queue so serving is never blocked.  SIGTERM/SIGINT (or a taflocctl
// shutdown/drain) stop the daemon gracefully: admissions stop,
// in-flight updates finish, every durable zone WAL-flushes and commits
// an epilogue snapshot, and per-zone telemetry JSONL is exported.
#include <signal.h>

#include <csignal>
#include <cstdio>
#include <exception>
#include <string>

#include "tafloc/daemon/daemon.h"
#include "tafloc/util/cli.h"
#include "tafloc/util/log.h"

namespace {

volatile std::sig_atomic_t g_signal = 0;
tafloc::daemon::EventLoop* g_loop = nullptr;

void on_signal(int) {
  g_signal = 1;
  if (g_loop != nullptr) g_loop->post_from_signal();
}

void install_signal_handlers() {
  struct sigaction sa{};
  sa.sa_handler = on_signal;
  sigemptyset(&sa.sa_mask);
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
  // A client vanishing mid-response must not kill the daemon.
  ::signal(SIGPIPE, SIG_IGN);
}

int usage() {
  std::fprintf(stderr,
               "usage: taflocd --config=FILE [--socket=PATH] [--telemetry-dir=DIR] "
               "[--poll-ms=N]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tafloc;
  using namespace tafloc::daemon;

  const ArgParser args(argc, argv);
  const std::string config_path = args.get_string("config", "");
  if (config_path.empty()) return usage();

  try {
    DaemonConfig config = DaemonConfig::load_file(config_path);
    if (args.has("socket")) config.socket_path = args.get_string("socket", config.socket_path);
    if (args.has("telemetry-dir")) {
      config.telemetry_dir = args.get_string("telemetry-dir", config.telemetry_dir);
    }
    const int poll_ms = static_cast<int>(args.get_long("poll-ms", 50));

    EventLoop loop;
    g_loop = &loop;
    ZoneManager zones(config);
    ControlServer server(zones, loop, config.socket_path);

    bool shutting_down = false;
    const auto shutdown = [&] {
      if (shutting_down) return;
      shutting_down = true;
      TAFLOC_LOG_INFO << "taflocd: graceful shutdown (drain all zones)";
      server.stop_admissions();
      zones.drain_all();
      if (!config.telemetry_dir.empty()) {
        try {
          const std::size_t n = zones.export_telemetry(config.telemetry_dir);
          TAFLOC_LOG_INFO << "taflocd: exported telemetry for " << n << " zone(s) to "
                          << config.telemetry_dir;
        } catch (const std::exception& e) {
          TAFLOC_LOG_ERROR << "taflocd: telemetry export failed: " << e.what();
        }
      }
      server.close();
      loop.stop();
    };
    server.set_shutdown_handler(shutdown);
    server.set_reload_handler(
        [&] { return zones.reload(DaemonConfig::load_file(config_path)); });

    // Serving-thread supervision: every loop iteration lands finished
    // update jobs; a signal turns into the same graceful path as a
    // taflocctl shutdown.
    loop.set_idle_hook([&] {
      if (g_signal != 0) {
        g_signal = 0;
        shutdown();
        return;
      }
      zones.poll_all();
    });
    for (const auto& zone : zones.zones()) {
      zone->set_wakeup([&loop] { loop.post_from_signal(); });
    }

    install_signal_handlers();
    const std::size_t serving = zones.start_all();
    if (serving == 0) {
      TAFLOC_LOG_ERROR << "taflocd: no zone reached serving; refusing to start";
      return 1;
    }
    TAFLOC_LOG_INFO << "taflocd: " << serving << "/" << zones.zones().size()
                    << " zone(s) serving";
    server.open();
    loop.run(poll_ms);
    TAFLOC_LOG_INFO << "taflocd: clean exit";
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "taflocd: %s\n", e.what());
    return 1;
  }
}
