// taflocctl -- control client for taflocd.
//
//   taflocctl --socket=PATH status   [--zone=NAME]
//   taflocctl --socket=PATH localize --zone=NAME --rss=v1,v2,... [--trace_id=N] [--trace]
//   taflocctl --socket=PATH probe    --zone=NAME [--count=N]
//   taflocctl --socket=PATH observe  --zone=NAME --t=DAYS --ambient=v1,v2,...
//   taflocctl --socket=PATH resurvey --zone=NAME --t=DAYS
//   taflocctl --socket=PATH top      [--zone=NAME]
//   taflocctl --socket=PATH trace    --zone=NAME [--max=N] [--slow]
//   taflocctl --socket=PATH drain    [--zone=NAME]
//   taflocctl --socket=PATH reload
//   taflocctl --socket=PATH shutdown
//
// `top` is the live-introspection view: one row per zone with QPS,
// request latency quantiles, served/degraded/shed counts, staleness,
// recalibration status, and the SLO error budget -- assembled from one
// kMetricsRequest + one kStatusRequest, no daemon-side state.
// `trace` dumps the zone's retained trace records (or, with --slow, its
// slow-query log) as JSONL on stdout, one request per line.
//
// Exit status: 0 when the daemon answered with wire status ok, 1 on a
// daemon-side error status, 2 on usage/connection errors.
#include <errno.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <exception>
#include <stdexcept>
#include <string>
#include <vector>

#include "tafloc/daemon/wire.h"
#include "tafloc/util/cli.h"

namespace {

using namespace tafloc;
using namespace tafloc::daemon;

int usage() {
  std::fprintf(stderr,
               "usage: taflocctl --socket=PATH "
               "status|localize|probe|observe|resurvey|top|trace|drain|reload|shutdown [options]\n"
               "  status   [--zone=NAME]\n"
               "  localize --zone=NAME --rss=v1,v2,... [--trace_id=N] [--trace]\n"
               "  probe    --zone=NAME [--count=N]\n"
               "  observe  --zone=NAME --t=DAYS --ambient=v1,v2,...\n"
               "  resurvey --zone=NAME --t=DAYS\n"
               "  top      [--zone=NAME]\n"
               "  trace    --zone=NAME [--max=N] [--slow]\n"
               "  drain    [--zone=NAME]\n"
               "  reload | shutdown\n");
  return 2;
}

std::vector<double> parse_csv(const std::string& csv) {
  std::vector<double> values;
  std::size_t pos = 0;
  while (pos <= csv.size()) {
    const std::size_t comma = csv.find(',', pos);
    const std::string item =
        csv.substr(pos, comma == std::string::npos ? std::string::npos : comma - pos);
    if (item.empty()) throw std::runtime_error("empty element in list '" + csv + "'");
    std::size_t consumed = 0;
    values.push_back(std::stod(item, &consumed));
    if (consumed != item.size()) throw std::runtime_error("bad number '" + item + "'");
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return values;
}

class Client {
 public:
  explicit Client(const std::string& socket_path) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (socket_path.size() >= sizeof(addr.sun_path)) {
      throw std::runtime_error("socket path too long: " + socket_path);
    }
    std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) throw std::runtime_error("socket() failed");
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
      const std::string why = std::strerror(errno);
      ::close(fd_);
      fd_ = -1;
      throw std::runtime_error("cannot connect to " + socket_path + ": " + why);
    }
  }
  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }

  /// Send one encoded request, block until one complete frame returns.
  storage::Frame round_trip(const std::string& request) {
    std::size_t sent = 0;
    while (sent < request.size()) {
      const ssize_t n = ::write(fd_, request.data() + sent, request.size() - sent);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) throw std::runtime_error("write to daemon failed");
      sent += static_cast<std::size_t>(n);
    }
    storage::Frame frame;
    for (;;) {
      std::string error;
      const ExtractResult result = extract_packet(buffer_, frame, &error);
      if (result == ExtractResult::kPacket) return frame;
      if (result == ExtractResult::kCorrupt) {
        throw std::runtime_error("corrupt response from daemon: " + error);
      }
      char buf[4096];
      const ssize_t n = ::read(fd_, buf, sizeof buf);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) throw std::runtime_error("daemon closed the connection");
      buffer_.append(buf, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

/// kError replies can answer any request type; report and exit 1.
bool maybe_error(const storage::Frame& frame) {
  if (frame.type != static_cast<std::uint32_t>(PacketType::kError)) return false;
  const ErrorResponse err = ErrorResponse::decode(frame);
  std::fprintf(stderr, "error (%s): %s\n", wire_status_name(err.status), err.message.c_str());
  return true;
}

int report(WireStatus status, const std::string& message) {
  if (status == WireStatus::kOk) return 0;
  std::fprintf(stderr, "error (%s): %s\n", wire_status_name(status), message.c_str());
  return 1;
}

std::uint64_t find_counter(const ZoneMetrics& m, const char* name) {
  for (const auto& [key, value] : m.counters) {
    if (key == name) return value;
  }
  return 0;
}

const WireHistogram* find_histogram(const ZoneMetrics& m, const char* name) {
  for (const WireHistogram& h : m.histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  const ArgParser args(argc, argv);
  const std::string socket_path = args.get_string("socket", "");
  if (socket_path.empty() || args.positionals().size() != 1) return usage();
  const std::string command = args.positionals()[0];
  const std::string zone = args.get_string("zone", "");

  try {
    Client client(socket_path);
    std::uint64_t seq = 1;

    if (command == "status") {
      const storage::Frame frame = client.round_trip(StatusRequest{zone}.encode(seq));
      if (maybe_error(frame)) return 1;
      const StatusResponse res = StatusResponse::decode(frame);
      for (const ZoneStatus& z : res.zones) {
        std::printf(
            "zone=%s state=%s%s queries=%llu updates=%llu failed=%llu in_flight=%d "
            "staleness_db=%.3f clock_days=%.3f wal_seq=%llu backend=%s quantized=%d",
            z.zone.c_str(), z.state.c_str(), z.slo_degraded ? " degraded-slo" : "",
            static_cast<unsigned long long>(z.queries),
            static_cast<unsigned long long>(z.updates_committed),
            static_cast<unsigned long long>(z.updates_failed), z.update_in_flight ? 1 : 0,
            z.staleness_db, z.clock_days, static_cast<unsigned long long>(z.wal_sequence),
            z.kernel_backend.c_str(), z.quantized_tier ? 1 : 0);
        if (z.slo_ok + z.slo_violated > 0) {
          std::printf(" slo_ok=%llu slo_violated=%llu slo_budget=%.2f",
                      static_cast<unsigned long long>(z.slo_ok),
                      static_cast<unsigned long long>(z.slo_violated), z.slo_budget_remaining);
        }
        if (!z.last_error.empty()) std::printf(" last_error=%s", z.last_error.c_str());
        std::printf("\n");
      }
      return report(res.status, res.message);
    }

    if (command == "localize") {
      if (zone.empty() || !args.has("rss")) return usage();
      LocalizeRequest req{zone, parse_csv(args.get_string("rss", ""))};
      req.trace_id = static_cast<std::uint64_t>(args.get_long("trace_id", 0));
      req.trace_sampled = args.get_bool("trace", false) || req.trace_id != 0;
      const storage::Frame frame = client.round_trip(req.encode(seq));
      if (maybe_error(frame)) return 1;
      const LocalizeResponse res = LocalizeResponse::decode(frame);
      if (res.status == WireStatus::kOk) {
        std::printf("estimate=(%.3f, %.3f) served=%d degraded=%d confidence=%.3f links=%llu\n",
                    res.x, res.y, res.served ? 1 : 0, res.degraded ? 1 : 0, res.confidence,
                    static_cast<unsigned long long>(res.links_used));
      }
      return report(res.status, res.message);
    }

    if (command == "probe") {
      if (zone.empty()) return usage();
      const long count = args.get_long("count", 1);
      if (count < 1) return usage();
      double total_error = 0.0;
      for (long i = 0; i < count; ++i) {
        const storage::Frame frame = client.round_trip(ProbeRequest{zone}.encode(seq++));
        if (maybe_error(frame)) return 1;
        const ProbeResponse res = ProbeResponse::decode(frame);
        if (res.status != WireStatus::kOk) return report(res.status, res.message);
        total_error += res.error_m;
        std::printf("probe truth=(%.3f, %.3f) estimate=(%.3f, %.3f) error=%.3fm degraded=%d\n",
                    res.truth_x, res.truth_y, res.estimate_x, res.estimate_y, res.error_m,
                    res.degraded ? 1 : 0);
      }
      if (count > 1) std::printf("mean_error=%.3fm over %ld probes\n", total_error / count, count);
      return 0;
    }

    if (command == "observe") {
      if (zone.empty() || !args.has("t") || !args.has("ambient")) return usage();
      AmbientRequest req{zone, parse_csv(args.get_string("ambient", "")),
                         args.get_double("t", 0.0)};
      const storage::Frame frame = client.round_trip(req.encode(seq));
      if (maybe_error(frame)) return 1;
      const AmbientResponse res = AmbientResponse::decode(frame);
      if (res.status == WireStatus::kOk) {
        std::printf("accepted=%d sample_accepted=%d triggered=%d staleness_db=%.3f\n",
                    res.accepted ? 1 : 0, res.sample_accepted ? 1 : 0, res.triggered ? 1 : 0,
                    res.staleness_db);
      }
      return report(res.status, res.message);
    }

    if (command == "resurvey") {
      if (zone.empty() || !args.has("t")) return usage();
      ResurveyRequest req{zone, args.get_double("t", 0.0)};
      const storage::Frame frame = client.round_trip(req.encode(seq));
      if (maybe_error(frame)) return 1;
      const ResurveyResponse res = ResurveyResponse::decode(frame);
      std::printf("accepted=%d%s%s\n", res.accepted ? 1 : 0,
                  res.message.empty() ? "" : " message=", res.message.c_str());
      return report(res.status, res.message) != 0 ? 1 : (res.accepted ? 0 : 1);
    }

    if (command == "top") {
      // Two snapshots, one connection: registry metrics (latency
      // histogram, degraded/shed counters) + lifecycle status
      // (staleness, recalibration, SLO budget).
      const storage::Frame mframe = client.round_trip(MetricsRequest{zone}.encode(seq++));
      if (maybe_error(mframe)) return 1;
      const MetricsResponse metrics = MetricsResponse::decode(mframe);
      if (metrics.status != WireStatus::kOk) return report(metrics.status, metrics.message);
      const storage::Frame sframe = client.round_trip(StatusRequest{zone}.encode(seq++));
      if (maybe_error(sframe)) return 1;
      const StatusResponse status = StatusResponse::decode(sframe);
      if (status.status != WireStatus::kOk) return report(status.status, status.message);

      std::printf("%-12s %-14s %8s %8s %8s %8s %8s %8s %6s %9s %6s  %s\n", "ZONE", "STATE",
                  "QPS", "P50ms", "P95ms", "P99ms", "SERVED", "DEGRADED", "SHED", "STALE_dB",
                  "RECAL", "SLO");
      for (const ZoneMetrics& m : metrics.zones) {
        const ZoneStatus* zs = nullptr;
        for (const ZoneStatus& candidate : status.zones) {
          if (candidate.zone == m.zone) zs = &candidate;
        }
        const WireHistogram* lat = find_histogram(m, "zone.request_seconds");
        const double uptime_s = static_cast<double>(m.uptime_ns) * 1e-9;
        const std::uint64_t served = lat != nullptr ? lat->count : 0;
        const double qps = uptime_s > 0.0 ? static_cast<double>(served) / uptime_s : 0.0;
        char slo[96];
        if (zs != nullptr && zs->slo_ok + zs->slo_violated > 0) {
          std::snprintf(slo, sizeof slo, "%s ok=%llu viol=%llu budget=%.2f",
                        zs->slo_degraded ? "degraded-slo" : "ok",
                        static_cast<unsigned long long>(zs->slo_ok),
                        static_cast<unsigned long long>(zs->slo_violated),
                        zs->slo_budget_remaining);
        } else {
          std::snprintf(slo, sizeof slo, "-");
        }
        std::printf("%-12s %-14s %8.1f %8.3f %8.3f %8.3f %8llu %8llu %6llu %9.3f %6s  %s\n",
                    m.zone.c_str(), m.state.c_str(), qps,
                    lat != nullptr ? lat->p50 * 1e3 : 0.0, lat != nullptr ? lat->p95 * 1e3 : 0.0,
                    lat != nullptr ? lat->p99 * 1e3 : 0.0,
                    static_cast<unsigned long long>(served),
                    static_cast<unsigned long long>(find_counter(m, "system.degraded_queries")),
                    static_cast<unsigned long long>(find_counter(m, "zone.shed")),
                    zs != nullptr ? zs->staleness_db : 0.0,
                    (zs != nullptr && zs->update_in_flight) ? "yes" : "no", slo);
      }
      return 0;
    }

    if (command == "trace") {
      if (zone.empty()) return usage();
      TraceRequest req{zone, static_cast<std::uint64_t>(args.get_long("max", 64)),
                       args.get_bool("slow", false)};
      const storage::Frame frame = client.round_trip(req.encode(seq));
      if (maybe_error(frame)) return 1;
      const TraceResponse res = TraceResponse::decode(frame);
      if (res.status == WireStatus::kOk) {
        std::fputs(res.jsonl.c_str(), stdout);
        std::fprintf(stderr, "%llu recorded, %llu dropped\n",
                     static_cast<unsigned long long>(res.total_recorded),
                     static_cast<unsigned long long>(res.dropped));
      }
      return report(res.status, res.message);
    }

    if (command == "drain" || command == "reload" || command == "shutdown") {
      AdminRequest req;
      req.zone = zone;
      req.op = command == "drain"    ? AdminOp::kDrain
               : command == "reload" ? AdminOp::kReload
                                     : AdminOp::kShutdown;
      const storage::Frame frame = client.round_trip(req.encode(seq));
      if (maybe_error(frame)) return 1;
      const AdminResponse res = AdminResponse::decode(frame);
      if (!res.message.empty()) std::printf("%s\n", res.message.c_str());
      return report(res.status, res.message);
    }

    std::fprintf(stderr, "unknown command '%s'\n", command.c_str());
    return usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "taflocctl: %s\n", e.what());
    return 2;
  }
}
