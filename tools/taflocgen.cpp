// taflocgen -- closed-loop ingest load generator for taflocd.
//
//   taflocgen --socket=PATH --zone=NAME --seed=N [options]
//
//     --nodes=N            sensor nodes sharing the links      (default 4)
//     --rounds=N           scan rounds per QPS step            (default 40)
//     --qps=a,b,c          batch-send rates to step through    (default 25,50,100)
//     --motion-fraction=F  fraction of rounds with a target    (default 0.3)
//     --dup-fraction=F     per-batch duplicate probability     (default 0.1)
//     --shuffle=BOOL       shuffle batch delivery order        (default true)
//     --t-start=DAYS       timestamp of the first round        (default 0.0)
//     --t-step=DAYS        timestamp increment per round       (default 2e-4)
//     --out=PATH           JSON report path                    (default BENCH_serving.json)
//
// Mirrors the zone's world by seed: the generator builds the same
// Scenario the daemon loaded, draws ambient or target scans from its
// collector, splits each round across a NodeNetwork, perturbs transport
// (duplicates + reordering), and replays the batches over the wire at a
// paced rate.  Each QPS step records client-side latency quantiles and
// the daemon's own ingest accounting (gated vs admitted, dedup drops,
// served/degraded/shed) into one JSON report for BENCH_serving.json.
//
// Timestamps stay small (fractions of a day) so the movement gate
// operates against a fresh scheduler baseline -- the regime the
// daemon's own recalibration loop maintains in production.
//
// Exit status: 0 on success, 1 when the daemon rejected traffic with a
// non-ok status other than shedding, 2 on usage/connection errors.
#include <errno.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <exception>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "tafloc/daemon/wire.h"
#include "tafloc/sim/node_net.h"
#include "tafloc/sim/scenario.h"
#include "tafloc/util/cli.h"

namespace {

using namespace tafloc;
using namespace tafloc::daemon;
using Clock = std::chrono::steady_clock;

int usage() {
  std::fprintf(stderr,
               "usage: taflocgen --socket=PATH --zone=NAME --seed=N\n"
               "  [--nodes=4] [--rounds=40] [--qps=25,50,100]\n"
               "  [--motion-fraction=0.3] [--dup-fraction=0.1] [--shuffle=true]\n"
               "  [--t-start=0.0] [--t-step=2e-4] [--out=BENCH_serving.json]\n");
  return 2;
}

std::vector<double> parse_csv(const std::string& csv) {
  std::vector<double> values;
  std::size_t pos = 0;
  while (pos <= csv.size()) {
    const std::size_t comma = csv.find(',', pos);
    const std::string item =
        csv.substr(pos, comma == std::string::npos ? std::string::npos : comma - pos);
    if (item.empty()) throw std::runtime_error("empty element in list '" + csv + "'");
    std::size_t consumed = 0;
    values.push_back(std::stod(item, &consumed));
    if (consumed != item.size()) throw std::runtime_error("bad number '" + item + "'");
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return values;
}

class Client {
 public:
  explicit Client(const std::string& socket_path) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (socket_path.size() >= sizeof(addr.sun_path)) {
      throw std::runtime_error("socket path too long: " + socket_path);
    }
    std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) throw std::runtime_error("socket() failed");
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
      const std::string why = std::strerror(errno);
      ::close(fd_);
      fd_ = -1;
      throw std::runtime_error("cannot connect to " + socket_path + ": " + why);
    }
  }
  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }

  storage::Frame round_trip(const std::string& request) {
    std::size_t sent = 0;
    while (sent < request.size()) {
      const ssize_t n = ::write(fd_, request.data() + sent, request.size() - sent);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) throw std::runtime_error("write to daemon failed");
      sent += static_cast<std::size_t>(n);
    }
    storage::Frame frame;
    for (;;) {
      std::string error;
      const ExtractResult result = extract_packet(buffer_, frame, &error);
      if (result == ExtractResult::kPacket) return frame;
      if (result == ExtractResult::kCorrupt) {
        throw std::runtime_error("corrupt response from daemon: " + error);
      }
      char buf[4096];
      const ssize_t n = ::read(fd_, buf, sizeof buf);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) throw std::runtime_error("daemon closed the connection");
      buffer_.append(buf, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

/// Per-QPS-step aggregates, client side + daemon-reported.
struct StepStats {
  double target_qps = 0.0;
  double achieved_qps = 0.0;
  std::uint64_t rounds = 0;
  std::uint64_t batches = 0;
  std::uint64_t readings = 0;
  std::uint64_t dups_dropped = 0;
  std::uint64_t stale_dropped = 0;
  std::uint64_t bad_readings = 0;
  std::uint64_t rounds_completed = 0;
  std::uint64_t gated_ambient = 0;
  std::uint64_t admitted_queries = 0;
  std::uint64_t served = 0;
  std::uint64_t degraded = 0;
  std::uint64_t shed = 0;
  std::uint64_t errors = 0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
};

double percentile(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double rank = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

void write_json(const std::string& path, const std::string& zone, std::uint64_t seed,
                std::size_t nodes, double motion_fraction, double dup_fraction,
                const std::vector<StepStats>& steps) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) throw std::runtime_error("cannot write " + path);
  std::fprintf(out, "{\n  \"tool\": \"taflocgen\",\n  \"zone\": \"%s\",\n", zone.c_str());
  std::fprintf(out, "  \"seed\": %llu,\n  \"nodes\": %zu,\n", (unsigned long long)seed, nodes);
  std::fprintf(out, "  \"motion_fraction\": %.3f,\n  \"dup_fraction\": %.3f,\n", motion_fraction,
               dup_fraction);
  std::fprintf(out, "  \"steps\": [\n");
  for (std::size_t i = 0; i < steps.size(); ++i) {
    const StepStats& s = steps[i];
    std::fprintf(out,
                 "    {\"target_qps\": %.1f, \"achieved_qps\": %.1f, \"rounds\": %llu, "
                 "\"batches\": %llu, \"readings\": %llu,\n"
                 "     \"p50_ms\": %.3f, \"p95_ms\": %.3f, \"p99_ms\": %.3f,\n"
                 "     \"served\": %llu, \"degraded\": %llu, \"shed\": %llu, \"errors\": %llu,\n"
                 "     \"gated_ambient\": %llu, \"admitted_queries\": %llu,\n"
                 "     \"dups_dropped\": %llu, \"stale_dropped\": %llu, \"bad_readings\": %llu, "
                 "\"rounds_completed\": %llu}%s\n",
                 s.target_qps, s.achieved_qps, (unsigned long long)s.rounds,
                 (unsigned long long)s.batches, (unsigned long long)s.readings, s.p50_ms, s.p95_ms,
                 s.p99_ms, (unsigned long long)s.served, (unsigned long long)s.degraded,
                 (unsigned long long)s.shed, (unsigned long long)s.errors,
                 (unsigned long long)s.gated_ambient, (unsigned long long)s.admitted_queries,
                 (unsigned long long)s.dups_dropped, (unsigned long long)s.stale_dropped,
                 (unsigned long long)s.bad_readings, (unsigned long long)s.rounds_completed,
                 i + 1 < steps.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
}

}  // namespace

int main(int argc, char** argv) {
  const ArgParser args(argc, argv);
  const std::string socket_path = args.get_string("socket", "");
  const std::string zone = args.get_string("zone", "");
  if (socket_path.empty() || zone.empty() || !args.has("seed")) return usage();

  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_long("seed", 0));
  const long nodes = args.get_long("nodes", 4);
  const long rounds_per_step = args.get_long("rounds", 40);
  const double motion_fraction = args.get_double("motion-fraction", 0.3);
  const double dup_fraction = args.get_double("dup-fraction", 0.1);
  const bool shuffle = args.get_bool("shuffle", true);
  const double t_start = args.get_double("t-start", 0.0);
  const double t_step = args.get_double("t-step", 2e-4);
  const std::string out_path = args.get_string("out", "BENCH_serving.json");
  if (nodes < 1 || rounds_per_step < 1 || motion_fraction < 0.0 || motion_fraction > 1.0) {
    return usage();
  }

  try {
    const std::vector<double> qps_steps = parse_csv(args.get_string("qps", "25,50,100"));
    for (const double qps : qps_steps) {
      if (!(qps > 0.0)) throw std::runtime_error("qps values must be positive");
    }

    // Mirror the daemon's world: same scenario seed means the generator
    // draws scans from the same deployment the zone localizes against.
    Scenario scenario = Scenario::paper_room(seed);
    const std::size_t num_links = scenario.deployment().num_links();
    const std::vector<Point2> centers = scenario.deployment().grid().all_centers();
    Rng rng(seed ^ 0x67656eULL);  // "gen": distinct stream from the daemon's.
    NodeNetwork net(num_links, static_cast<std::size_t>(nodes));

    Client client(socket_path);
    std::uint64_t seq = 1;
    std::vector<StepStats> steps;
    long round_index = 0;
    bool hard_error = false;

    for (const double qps : qps_steps) {
      StepStats stats;
      stats.target_qps = qps;
      std::vector<double> latencies_ms;
      const auto interval =
          std::chrono::duration_cast<Clock::duration>(std::chrono::duration<double>(1.0 / qps));
      const Clock::time_point step_start = Clock::now();
      Clock::time_point next_send = step_start;
      std::uint64_t sent = 0;

      for (long r = 0; r < rounds_per_step; ++r, ++round_index) {
        const double t_days = t_start + t_step * static_cast<double>(round_index);
        const bool moving = rng.bernoulli(motion_fraction);
        const Vector y = moving
                             ? scenario.collector().observe(centers[rng.index(centers.size())],
                                                            t_days, rng)
                             : scenario.collector().observe_ambient(t_days, rng);
        std::vector<ingest::NodeBatch> batches = net.emit_round(y, t_days);
        NodeNetwork::perturb(batches, dup_fraction, shuffle, rng);
        ++stats.rounds;

        for (const ingest::NodeBatch& batch : batches) {
          std::this_thread::sleep_until(next_send);
          next_send += interval;
          const BatchIngestRequest req{zone, batch};
          const Clock::time_point before = Clock::now();
          const storage::Frame frame = client.round_trip(req.encode(seq++));
          const Clock::time_point after = Clock::now();
          latencies_ms.push_back(std::chrono::duration<double, std::milli>(after - before).count());
          ++sent;
          ++stats.batches;

          if (frame.type == static_cast<std::uint32_t>(PacketType::kError)) {
            const ErrorResponse err = ErrorResponse::decode(frame);
            std::fprintf(stderr, "taflocgen: error (%s): %s\n", wire_status_name(err.status),
                         err.message.c_str());
            ++stats.errors;
            hard_error = true;
            continue;
          }
          const BatchIngestResponse res = BatchIngestResponse::decode(frame);
          if (res.status == WireStatus::kNotServing) {
            ++stats.shed;
            continue;
          }
          if (res.status != WireStatus::kOk) {
            std::fprintf(stderr, "taflocgen: ingest rejected (%s): %s\n",
                         wire_status_name(res.status), res.message.c_str());
            ++stats.errors;
            hard_error = true;
            continue;
          }
          stats.readings += res.readings;
          stats.dups_dropped += res.dups_dropped;
          stats.stale_dropped += res.stale_dropped;
          stats.bad_readings += res.bad_readings;
          stats.rounds_completed += res.rounds_completed;
          stats.gated_ambient += res.gated_ambient;
          stats.admitted_queries += res.admitted_queries;
          for (const IngestQuery& q : res.queries) {
            if (q.served) ++stats.served;
            if (q.degraded) ++stats.degraded;
          }
        }
      }

      const double elapsed_s =
          std::chrono::duration<double>(Clock::now() - step_start).count();
      stats.achieved_qps = elapsed_s > 0.0 ? static_cast<double>(sent) / elapsed_s : 0.0;
      std::sort(latencies_ms.begin(), latencies_ms.end());
      stats.p50_ms = percentile(latencies_ms, 0.50);
      stats.p95_ms = percentile(latencies_ms, 0.95);
      stats.p99_ms = percentile(latencies_ms, 0.99);
      steps.push_back(stats);

      std::printf(
          "qps=%.0f achieved=%.1f batches=%llu p50=%.3fms p95=%.3fms p99=%.3fms "
          "gated=%llu admitted=%llu served=%llu degraded=%llu shed=%llu dups=%llu stale=%llu\n",
          stats.target_qps, stats.achieved_qps, (unsigned long long)stats.batches, stats.p50_ms,
          stats.p95_ms, stats.p99_ms, (unsigned long long)stats.gated_ambient,
          (unsigned long long)stats.admitted_queries, (unsigned long long)stats.served,
          (unsigned long long)stats.degraded, (unsigned long long)stats.shed,
          (unsigned long long)stats.dups_dropped, (unsigned long long)stats.stale_dropped);
    }

    write_json(out_path, zone, seed, static_cast<std::size_t>(nodes), motion_fraction,
               dup_fraction, steps);
    std::printf("wrote %s (%zu steps)\n", out_path.c_str(), steps.size());
    return hard_error ? 1 : 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "taflocgen: %s\n", e.what());
    return 2;
  }
}
