// Figure 4 reproduction: fingerprint update time cost vs area size.
//
// Paper (Fig. 4 + section 3): for each grid, 100 one-per-second RSS
// samples are collected, so a full re-survey of an L x L area costs
// 100 * (L / 0.6)^2 / 3600 hours (2.78 h at 6 m), while TafLoc surveys
// only its reference locations (10 at 6 m -> 0.28 h; ~1.6 h at 36 m).
// The gap widens quadratically with the area edge.
//
// We regenerate the curve two ways: the closed-form cost model, and the
// reference count TafLoc would actually pick (numeric rank of the
// area's fingerprint matrix) -- confirming the paper's premise that the
// reference count grows with the link count, not the grid count.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"
#include "tafloc/exec/exec_config.h"
#include "tafloc/tafloc/system.h"
#include "tafloc/util/csv.h"
#include "tafloc/util/table.h"

namespace {

using namespace tafloc;
using namespace tafloc::bench;

constexpr double kEdges[] = {6.0, 12.0, 18.0, 24.0, 30.0, 36.0};
// Smoke mode measures only the two smallest areas (the 36 m rank
// measurement is by far the slowest part of this bench).
const std::size_t kNumEdges = smoke_or(std::size(kEdges), std::size_t{2});

/// TafLoc's reference count for an area: the numeric rank of its
/// (noise-free) fingerprint matrix, measured on the actual deployment.
std::size_t measured_reference_count(double edge_m) {
  const Scenario s = Scenario::square_area(edge_m, 17);
  const Matrix truth = s.collector().ground_truth(0.0);
  return suggest_reference_count(truth, 1e-3);
}

void run_experiment() {
  std::printf("=== Fig. 4: fingerprint update time cost vs area edge length ===\n");
  std::printf("survey protocol: 100 samples @ 1 Hz per surveyed grid (paper section 3)\n\n");

  const SurveyCostModel cost;

  // Paper's inline example first.
  AsciiTable inline_table;
  inline_table.set_header({"quantity", "paper", "ours"});
  inline_table.add_row({"full survey, 6 m x 6 m", "2.78 h",
                        AsciiTable::num(cost.full_survey_hours(6.0)) + " h"});
  inline_table.add_row({"TafLoc update, 10 refs", "0.28 h",
                        AsciiTable::num(cost.reference_survey_hours(10)) + " h"});
  std::fputs(inline_table.render().c_str(), stdout);
  std::printf("\n");

  CsvWriter csv(csv_path("fig4_update_time_cost"));
  csv.write_row({"edge_m", "grids", "links", "references", "existing_hours", "tafloc_hours",
                 "speedup"});

  AsciiTable table;
  table.set_header({"edge", "grids", "links", "refs (rank)", "existing systems", "TafLoc",
                    "speedup"});

  for (std::size_t e = 0; e < kNumEdges; ++e) {
    const double edge = kEdges[e];
    const Deployment d = Deployment::square_area(edge);
    const std::size_t refs = measured_reference_count(edge);
    const double full = cost.full_survey_hours(edge);
    const double taf = cost.reference_survey_hours(refs);
    table.add_row({AsciiTable::num(edge, 0) + " m", std::to_string(d.num_grids()),
                   std::to_string(d.num_links()), std::to_string(refs),
                   AsciiTable::num(full, 2) + " h", AsciiTable::num(taf, 2) + " h",
                   AsciiTable::num(full / taf, 1) + "x"});
    csv.write_numeric_row({edge, static_cast<double>(d.num_grids()),
                           static_cast<double>(d.num_links()), static_cast<double>(refs), full,
                           taf, full / taf});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf("\nPaper shape check: existing systems grow quadratically (~100 h at 36 m);\n"
              "TafLoc grows linearly with the link count (~1.6 h at 36 m).\n\n");
}

// ---- micro benchmarks ----

void BM_ReferenceSelectionQrPivot(benchmark::State& state) {
  const auto edge = static_cast<double>(state.range(0));
  const Scenario s = Scenario::square_area(edge, 3);
  const Matrix truth = s.collector().ground_truth(0.0);
  for (auto _ : state) {
    const auto refs = select_reference_locations(
        truth, std::max<std::size_t>(truth.rows() / 2, 1), ReferencePolicy::QrPivot);
    benchmark::DoNotOptimize(refs);
  }
}
BENCHMARK(BM_ReferenceSelectionQrPivot)->Arg(6)->Arg(12)->Arg(18)->Unit(benchmark::kMillisecond);

void BM_RankEstimation(benchmark::State& state) {
  const auto edge = static_cast<double>(state.range(0));
  const Scenario s = Scenario::square_area(edge, 3);
  const Matrix truth = s.collector().ground_truth(0.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(suggest_reference_count(truth, 1e-3));
  }
}
BENCHMARK(BM_RankEstimation)->Arg(6)->Arg(12)->Unit(benchmark::kMillisecond);

void BM_TafLocUpdateThreads(benchmark::State& state) {
  // The compute side of an update (LoLi-IR on the paper room) at an
  // explicit pool size -- the wall-clock half of the Fig. 4 story.  The
  // reconstruction itself is thread-count deterministic, so every arg
  // does identical numeric work.
  const std::size_t before = global_thread_count();
  set_global_threads(static_cast<std::size_t>(state.range(0)));

  const Scenario s = Scenario::paper_room(51);
  TafLocSystem system(s.deployment());
  Rng rng(51);
  const Matrix x0 = s.collector().survey_all(0.0, rng);
  const Vector ambient0 = s.collector().ambient_scan(0.0, rng);
  system.calibrate(x0, ambient0, 0.0);

  const double t = 45.0;
  const Matrix fresh_refs = s.collector().survey_grids(system.reference_locations(), t, rng);
  const Vector fresh_ambient = s.collector().ambient_scan(t, rng);

  for (auto _ : state) {
    auto report = system.update(fresh_refs, fresh_ambient, t);
    benchmark::DoNotOptimize(report.solver.outer_iterations);
  }
  set_global_threads(before);
}
BENCHMARK(BM_TafLocUpdateThreads)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  run_experiment();
  return tafloc::bench::finish_benchmarks(argc, argv);
}
