// Figure 5 reproduction: localization error CDF at 3 months, comparing
// TafLoc against RTI and RASS (with and without TafLoc's fingerprint
// reconstruction feeding RASS's database).
//
// Paper (Fig. 5 + section 3): at 3 months TafLoc performs best; adding
// the reconstruction scheme to RASS significantly improves its median
// accuracy, demonstrating the scheme transfers to other fingerprint
// systems.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>

#include "bench_util.h"
#include "tafloc/util/csv.h"
#include "tafloc/util/table.h"

namespace {

using namespace tafloc;
using namespace tafloc::bench;

constexpr double kEvalDay = 90.0;
const int kSeeds = smoke_or(3, 1);
const std::size_t kTargetsPerSeed = smoke_or(std::size_t{60}, std::size_t{6});

void run_experiment() {
  std::printf("=== Fig. 5: localization error CDF at 3 months ===\n");
  std::printf("systems: TafLoc, RTI, RASS w/ rec., RASS w/o rec.; %d seeds x %zu targets\n\n",
              kSeeds, kTargetsPerSeed);

  std::map<std::string, std::vector<double>> errors;

  for (int seed = 1; seed <= kSeeds; ++seed) {
    CalibratedRoom room(static_cast<std::uint64_t>(seed));
    // TafLoc's low-cost update at 3 months.
    room.system.update_with_collector(room.scenario.collector(), kEvalDay, room.rng);

    const Vector ambient_now = room.scenario.collector().ambient_scan(kEvalDay, room.rng);
    const RtiLocalizer rti(room.scenario.deployment(), ambient_now);
    const FingerprintDatabase stale_db(room.x0, room.ambient0, 0.0);
    const RassLocalizer rass_without(room.scenario.deployment(), stale_db, ambient_now,
                                     RassConfig{}, "RASS w/o rec.");
    const RassLocalizer rass_with(room.scenario.deployment(), room.system.database(),
                                  ambient_now, RassConfig{}, "RASS w/ rec.");

    const std::vector<const Localizer*> systems{&room.system, &rti, &rass_with, &rass_without};

    const auto targets =
        random_positions(room.scenario.deployment().grid(), kTargetsPerSeed, room.rng);
    for (const Point2& truth : targets) {
      const Vector y = room.scenario.collector().observe(truth, kEvalDay, room.rng);
      for (const Localizer* sys : systems) {
        errors[sys->name()].push_back(distance(sys->localize(y), truth));
      }
    }
  }

  CsvWriter csv(csv_path("fig5_localization_cdf"));
  csv.write_row({"system", "mean_m", "median_m", "p80_m", "p95_m"});

  AsciiTable table;
  table.set_header({"system", "mean", "median", "p80", "p95"});
  // Print in the paper's legend order.
  for (const std::string name : {"TafLoc", "RTI", "RASS w/ rec.", "RASS w/o rec."}) {
    const auto& errs = errors.at(name);
    const ErrorSummary s = summarize_errors(errs);
    table.add_row({name, AsciiTable::num(s.mean) + " m", AsciiTable::num(s.median),
                   AsciiTable::num(s.p80), AsciiTable::num(s.p95)});
    csv.write_row({name, AsciiTable::num(s.mean, 4), AsciiTable::num(s.median, 4),
                   AsciiTable::num(s.p80, 4), AsciiTable::num(s.p95, 4)});
  }
  std::fputs(table.render().c_str(), stdout);

  std::printf("\nCDF series (error m -> fraction):\n");
  for (const std::string name : {"TafLoc", "RTI", "RASS w/ rec.", "RASS w/o rec."}) {
    print_cdf_summary(name, errors.at(name), 6.0, "m");
  }
  std::printf(
      "\nPaper shape check: TafLoc best; RASS w/ rec. beats RASS w/o rec. (the\n"
      "reconstruction transfers); all medians well inside the paper's 0-6 m axis.\n\n");
}

// ---- micro benchmarks: one localization per system ----

struct Fixture {
  CalibratedRoom room{11};
  Vector ambient_now;
  Vector observation;
  Fixture() {
    room.system.update_with_collector(room.scenario.collector(), kEvalDay, room.rng);
    ambient_now = room.scenario.collector().ambient_scan(kEvalDay, room.rng);
    observation = room.scenario.collector().observe({3.0, 2.0}, kEvalDay, room.rng);
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

void BM_LocalizeTafLoc(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state) benchmark::DoNotOptimize(f.room.system.localize(f.observation));
}
BENCHMARK(BM_LocalizeTafLoc);

void BM_LocalizeRti(benchmark::State& state) {
  auto& f = fixture();
  const RtiLocalizer rti(f.room.scenario.deployment(), f.ambient_now);
  for (auto _ : state) benchmark::DoNotOptimize(rti.localize(f.observation));
}
BENCHMARK(BM_LocalizeRti);

void BM_LocalizeRass(benchmark::State& state) {
  auto& f = fixture();
  const RassLocalizer rass(f.room.scenario.deployment(), f.room.system.database(),
                           f.ambient_now);
  for (auto _ : state) benchmark::DoNotOptimize(rass.localize(f.observation));
}
BENCHMARK(BM_LocalizeRass);

}  // namespace

int main(int argc, char** argv) {
  run_experiment();
  return tafloc::bench::finish_benchmarks(argc, argv);
}
