// Ablation A5: frequency diversity (extension beyond the paper).
//
// The paper's AR9331 nodes can hop WiFi channels; measuring every link
// on C frequencies multiplies the fingerprint rows (M -> M*C virtual
// links) because multipath fading decorrelates across channels.  This
// bench sweeps C and reports localization error at day 0 and at day 90
// (after a TafLoc low-cost update), plus the update's labour cost --
// which does NOT grow with C (the reference count tracks the physical
// survey locations, and all channels are sampled in the same walk).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"
#include "tafloc/util/csv.h"
#include "tafloc/util/table.h"

namespace {

using namespace tafloc;
using namespace tafloc::bench;

const int kSeeds = smoke_or(3, 1);
const std::size_t kTargets = smoke_or(std::size_t{40}, std::size_t{4});

struct Outcome {
  double err_day0 = 0.0;
  double err_day90 = 0.0;
  double refs = 0.0;
};

Outcome run_with_copies(std::size_t copies) {
  Outcome out;
  for (int seed = 1; seed <= kSeeds; ++seed) {
    const Deployment base = Deployment::paper_room();
    const Scenario s(Deployment::with_diversity(base, copies), ChannelConfig{},
                     static_cast<std::uint64_t>(seed) * 31 + copies);
    Rng rng(static_cast<std::uint64_t>(seed) * 17 + copies);

    // Pin the survey budget: 10 reference LOCATIONS regardless of how
    // many channels each walk samples -- labour is what the paper
    // counts, and one walk collects all C channels at once.
    TafLocConfig cfg;
    cfg.reference_count = 10;
    TafLocSystem system(s.deployment(), cfg);
    system.calibrate(s.collector().survey_all(0.0, rng), s.collector().ambient_scan(0.0, rng),
                     0.0);
    out.refs += static_cast<double>(system.reference_locations().size());

    const auto targets0 = random_positions(s.deployment().grid(), kTargets, rng);
    for (const Point2& truth : targets0) {
      const Vector y = s.collector().observe(truth, 0.0, rng);
      out.err_day0 += distance(system.localize(y), truth);
    }

    system.update_with_collector(s.collector(), 90.0, rng);
    const auto targets90 = random_positions(s.deployment().grid(), kTargets, rng);
    for (const Point2& truth : targets90) {
      const Vector y = s.collector().observe(truth, 90.0, rng);
      out.err_day90 += distance(system.localize(y), truth);
    }
  }
  const double n = static_cast<double>(kSeeds) * kTargets;
  out.err_day0 /= n;
  out.err_day90 /= n;
  out.refs /= kSeeds;
  return out;
}

void run_experiment() {
  std::printf("=== Ablation A5: frequency diversity (C channels per link) ===\n");
  std::printf("paper room; %d seeds x %zu targets per epoch\n\n", kSeeds, kTargets);

  CsvWriter csv(csv_path("ablation_frequency_diversity"));
  csv.write_row({"channels", "virtual_links", "references", "err_day0_m", "err_day90_m"});

  AsciiTable table;
  table.set_header({"channels C", "virtual links", "refs", "error day 0", "error day 90"});
  for (std::size_t copies : {1u, 2u, 3u}) {
    const Outcome o = run_with_copies(copies);
    table.add_row({std::to_string(copies), std::to_string(10 * copies),
                   AsciiTable::num(o.refs, 1), AsciiTable::num(o.err_day0) + " m",
                   AsciiTable::num(o.err_day90) + " m"});
    csv.write_numeric_row({static_cast<double>(copies), static_cast<double>(10 * copies),
                           o.refs, o.err_day0, o.err_day90});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf("\nReading: extra channels enrich the fingerprint signature (fewer\n"
              "collisions) without increasing the survey labour per update.\n\n");
}

void BM_SurveyWithDiversity(benchmark::State& state) {
  const auto copies = static_cast<std::size_t>(state.range(0));
  const Scenario s(Deployment::with_diversity(Deployment::paper_room(), copies),
                   ChannelConfig{}, 5);
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.collector().survey_all(0.0, rng));
  }
}
BENCHMARK(BM_SurveyWithDiversity)->Arg(1)->Arg(3)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  run_experiment();
  return tafloc::bench::finish_benchmarks(argc, argv);
}
