// Ablation A2: reference-set size and selection policy (DESIGN.md).
//
// The paper picks "maximum linearly independent" columns (realized here
// as column-pivoted QR) and uses n ~ rank reference locations (10 in
// the 10-link room).  This bench sweeps the reference count and
// compares the QR-pivot policy against random and uniform-grid
// selection: the reconstruction error should drop steeply until n
// reaches the matrix rank, then flatten -- and QR pivots should extract
// more from a small budget.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"
#include "tafloc/util/csv.h"
#include "tafloc/util/stats.h"
#include "tafloc/util/table.h"

namespace {

using namespace tafloc;
using namespace tafloc::bench;

constexpr std::size_t kCounts[] = {2, 4, 6, 8, 10, 14, 20};
constexpr double kEvalDay = 45.0;
const int kSeeds = smoke_or(3, 1);
const std::size_t kNumCounts = smoke_or(std::size(kCounts), std::size_t{3});

double error_for(std::size_t n_refs, ReferencePolicy policy) {
  double sum = 0.0;
  for (int seed = 1; seed <= kSeeds; ++seed) {
    ReconInstance inst(static_cast<std::uint64_t>(seed), kEvalDay, n_refs, policy);
    const LoliIrResult res = loli_ir_reconstruct(inst.problem);
    sum += mean_abs_error(res.x, inst.truth);
  }
  return sum / kSeeds;
}

void run_experiment() {
  std::printf("=== Ablation A2: reference-location count and selection policy ===\n");
  std::printf("reconstruction error (dBm, vs truth) at %.0f days, %d seeds\n\n", kEvalDay,
              kSeeds);

  // Context: the rank the automatic choice would pick.
  {
    ReconInstance inst(1, kEvalDay, 10);
    std::printf("numeric rank of the initial survey: %zu (paper: n = 10 refs, M = 10 links)\n\n",
                suggest_reference_count(inst.x0, 1e-3));
  }

  CsvWriter csv(csv_path("ablation_reference_selection"));
  csv.write_row({"n_refs", "qr_pivot_db", "random_db", "uniform_db", "survey_hours"});

  const SurveyCostModel cost;
  AsciiTable table;
  table.set_header({"refs", "QR pivot", "random", "uniform grid", "update cost"});
  for (std::size_t c = 0; c < kNumCounts; ++c) {
    const std::size_t n = kCounts[c];
    const double qr = error_for(n, ReferencePolicy::QrPivot);
    const double random = error_for(n, ReferencePolicy::Random);
    const double uniform = error_for(n, ReferencePolicy::UniformGrid);
    table.add_row({std::to_string(n), AsciiTable::num(qr) + " dBm", AsciiTable::num(random),
                   AsciiTable::num(uniform),
                   AsciiTable::num(cost.reference_survey_hours(n), 2) + " h"});
    csv.write_numeric_row({static_cast<double>(n), qr, random, uniform,
                           cost.reference_survey_hours(n)});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf("\nReading: error flattens once n reaches the fingerprint matrix rank --\n"
              "surveying more grids buys labour cost, not accuracy (the paper's premise).\n\n");
}

// ---- micro benchmarks ----

void BM_SelectReferences(benchmark::State& state) {
  ReconInstance inst(3, kEvalDay, 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        select_reference_locations(inst.x0, 10, ReferencePolicy::QrPivot));
  }
}
BENCHMARK(BM_SelectReferences)->Unit(benchmark::kMicrosecond);

void BM_LrrFit(benchmark::State& state) {
  ReconInstance inst(3, kEvalDay, 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(LrrModel(inst.x0, inst.refs));
  }
}
BENCHMARK(BM_LrrFit)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  run_experiment();
  return tafloc::bench::finish_benchmarks(argc, argv);
}
