// Shared plumbing for the reproduction benches: the calibrated paper
// room, the TafLoc update pipeline at a given elapsed time, and small
// output helpers.  Every bench binary prints its paper table/series and
// then runs google-benchmark micro timings from the same translation
// unit.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tafloc/tafloc.h"

namespace tafloc::bench {

/// One calibrated paper-room instance: scenario + initial survey +
/// everything TafLoc learned at t = 0.
struct CalibratedRoom {
  Scenario scenario;
  Matrix x0;
  Vector ambient0;
  TafLocSystem system;
  Rng rng;

  explicit CalibratedRoom(std::uint64_t seed, const TafLocConfig& config = {});
};

/// Reconstruction outcome at elapsed time t, scored two ways.
struct ReconstructionOutcome {
  double t_days = 0.0;
  std::vector<double> errors_vs_truth;     ///< |X^ - noise-free truth| per entry.
  std::vector<double> errors_vs_measured;  ///< |X^ - fresh validation survey| per entry
                                           ///< (what the paper's Fig. 3 measures).
  std::size_t references = 0;
};

/// Run TafLoc's low-cost update at `t_days` on a calibrated room and
/// score the reconstructed matrix.  `validate_measured` additionally
/// performs a full validation survey (slow but matches the paper's
/// protocol).
ReconstructionOutcome reconstruct_at(CalibratedRoom& room, double t_days,
                                     bool validate_measured = true);

/// A raw reconstruction problem instance (for solver / reference-policy
/// ablations that bypass the TafLocSystem facade).
struct ReconInstance {
  Scenario scenario;
  Matrix x0;
  Vector ambient0;
  DistortionMask mask;
  std::vector<std::size_t> refs;
  LoliIrProblem problem;  ///< assembled for `t_days`.
  Matrix truth;           ///< noise-free ground truth at `t_days`.
  double t_days = 0.0;

  ReconInstance(std::uint64_t seed, double t_days, std::size_t n_refs,
                ReferencePolicy policy = ReferencePolicy::QrPivot);
};

/// Print an empirical CDF as fixed-step table rows: value at each
/// percentile + the curve sampled on [0, hi].
void print_cdf_summary(const std::string& label, const std::vector<double>& samples,
                       double curve_hi, const std::string& unit);

/// Directory-less CSV path helper (benches write CSVs into the CWD).
std::string csv_path(const std::string& stem);

/// True when the TAFLOC_BENCH_SMOKE environment variable is set to
/// anything but "0": every bench shrinks its paper table to tiny sizes
/// and skips the google-benchmark timings, so CI can exercise all the
/// figure code in seconds.  Smoke output is for liveness, not numbers.
bool smoke_mode();

/// True when TAFLOC_BENCH_TELEMETRY is set to anything but "0": benches
/// that own a MetricRegistry embed its snapshot into their BENCH_*.json
/// record (via telemetry_json_array), so a CI artefact carries the
/// solver/workspace counters behind each timing.
bool telemetry_mode();

/// Re-shape a registry's JSONL snapshot (one object per line) into a
/// single JSON array literal, indented for embedding as a value inside
/// a BENCH_*.json record.
std::string telemetry_json_array(const MetricRegistry& registry, int indent = 2);

/// Pick the experiment size for the current mode.
template <typename T>
T smoke_or(T full, T smoke) {
  return smoke_mode() ? smoke : full;
}

/// Shared main() tail: runs the google-benchmark micro timings (after
/// `benchmark::Initialize`), or skips them entirely in smoke mode.
int finish_benchmarks(int argc, char** argv);

}  // namespace tafloc::bench
