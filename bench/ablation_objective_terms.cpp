// Ablation A1: contribution of each term of the LoLi-IR objective
// (DESIGN.md).  The paper motivates three properties -- low rank /
// known entries, the LRR prediction, and the continuity+similarity
// priors -- and adds a reference-pinning term implicitly (the reference
// columns are fresh measurements).  This bench disables each in turn
// and reports the reconstruction error at 45 and 90 days.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"
#include "tafloc/util/csv.h"
#include "tafloc/util/stats.h"
#include "tafloc/util/table.h"

namespace {

using namespace tafloc;
using namespace tafloc::bench;

const int kSeeds = smoke_or(3, 1);

struct Variant {
  const char* name;
  LoliIrConfig config;
};

std::vector<Variant> variants() {
  std::vector<Variant> out;
  out.push_back({"full objective", LoliIrConfig{}});
  {
    LoliIrConfig c;
    c.continuity_weight = 0.0;
    c.similarity_weight = 0.0;
    out.push_back({"no continuity/similarity", c});
  }
  {
    LoliIrConfig c;
    c.data_weight = 0.0;
    out.push_back({"no known-entry term", c});
  }
  {
    LoliIrConfig c;
    c.lrr_weight = 0.0;
    out.push_back({"no LRR prediction term", c});
  }
  {
    LoliIrConfig c;
    c.reference_weight = 0.0;
    out.push_back({"no reference pinning", c});
  }
  {
    LoliIrConfig c;
    c.anchor_pairwise_to_prediction = true;
    c.continuity_weight = 0.5;
    c.similarity_weight = 0.5;
    out.push_back({"priors anchored to prediction", c});
  }
  return out;
}

/// Mean over seeds of (mean error over all / over distorted entries).
struct Scores {
  double all = 0.0;
  double distorted = 0.0;
};

Scores score(const Variant& v, double t_days) {
  Scores s;
  for (int seed = 1; seed <= kSeeds; ++seed) {
    ReconInstance inst(static_cast<std::uint64_t>(seed), t_days, 10);
    const LoliIrResult res = loli_ir_reconstruct(inst.problem, v.config);
    s.all += mean_abs_error(res.x, inst.truth);
    const auto derr = entrywise_abs_errors_distorted(res.x, inst.truth, inst.mask);
    s.distorted += mean(derr);
  }
  s.all /= kSeeds;
  s.distorted /= kSeeds;
  return s;
}

void run_experiment() {
  std::printf("=== Ablation A1: objective-term contributions (LoLi-IR) ===\n");
  std::printf("reconstruction error vs noise-free truth, %d seeds, paper room\n\n", kSeeds);

  CsvWriter csv(csv_path("ablation_objective_terms"));
  csv.write_row({"variant", "t45_all_db", "t45_distorted_db", "t90_all_db",
                 "t90_distorted_db"});

  AsciiTable table;
  table.set_header({"variant", "45 d all", "45 d distorted", "90 d all", "90 d distorted"});
  for (const Variant& v : variants()) {
    const Scores s45 = score(v, 45.0);
    const Scores s90 = score(v, 90.0);
    table.add_row({v.name, AsciiTable::num(s45.all) + " dBm", AsciiTable::num(s45.distorted),
                   AsciiTable::num(s90.all), AsciiTable::num(s90.distorted)});
    csv.write_row({v.name, AsciiTable::num(s45.all, 4), AsciiTable::num(s45.distorted, 4),
                   AsciiTable::num(s90.all, 4), AsciiTable::num(s90.distorted, 4)});
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf(
      "\nReading: reference pinning and the LRR term carry most of the accuracy in\n"
      "this simulator (its drift largely preserves the linear column correlation);\n"
      "the pairwise priors matter most when the prediction degrades -- see the\n"
      "reference-selection ablation for a regime where they engage.\n\n");
}

// ---- micro benchmarks: solver cost vs configured rank ----

void BM_LoliIrByRank(benchmark::State& state) {
  ReconInstance inst(5, 45.0, 10);
  LoliIrConfig cfg;
  cfg.rank = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(loli_ir_reconstruct(inst.problem, cfg));
  }
}
BENCHMARK(BM_LoliIrByRank)->Arg(2)->Arg(4)->Arg(8)->Arg(12)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  run_experiment();
  return tafloc::bench::finish_benchmarks(argc, argv);
}
