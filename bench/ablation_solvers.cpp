// Ablation A3: reconstruction solver comparison (DESIGN.md).
//
// Property (i) alone says rank minimization can "roughly" reconstruct
// the matrix from the undistorted entries; the paper's LoLi-IR adds the
// LRR prediction (ii) and the continuity/similarity priors (iii).  This
// bench compares:
//   - SVT: nuclear-norm completion from the known (undistorted +
//     reference) entries only;
//   - LRR-only: the prediction X_R * Z as-is;
//   - LoLi-IR: the full objective.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"
#include "tafloc/linalg/svd.h"
#include "tafloc/util/csv.h"
#include "tafloc/util/stats.h"
#include "tafloc/util/table.h"

namespace {

using namespace tafloc;
using namespace tafloc::bench;

const int kSeeds = smoke_or(3, 1);

/// SVT needs an observation mask: undistorted entries carry the ambient
/// value, reference columns are fully observed.
Matrix svt_reconstruct(const ReconInstance& inst) {
  Matrix mask = inst.problem.mask_undistorted;
  Matrix known = inst.problem.known;
  for (std::size_t k = 0; k < inst.refs.size(); ++k) {
    const std::size_t g = inst.refs[k];
    for (std::size_t i = 0; i < known.rows(); ++i) {
      mask(i, g) = 1.0;
      known(i, g) = inst.problem.reference_columns(i, k);
    }
  }
  SvtOptions opts;
  opts.max_iterations = smoke_or(3000, 200);
  return svt_complete(known, mask, opts).x;
}

struct Row {
  double all = 0.0;
  double distorted = 0.0;
};

void accumulate(Row& row, const Matrix& x, const ReconInstance& inst) {
  row.all += mean_abs_error(x, inst.truth);
  const auto derr = entrywise_abs_errors_distorted(x, inst.truth, inst.mask);
  row.distorted += mean(derr);
}

void run_experiment() {
  std::printf("=== Ablation A3: SVT vs LRR-only vs LoLi-IR ===\n");
  std::printf("reconstruction error (dBm, vs truth), %d seeds, paper room\n\n", kSeeds);

  CsvWriter csv(csv_path("ablation_solvers"));
  csv.write_row({"solver", "t_days", "all_db", "distorted_db"});

  AsciiTable table;
  table.set_header({"solver", "elapsed", "all entries", "distorted entries"});

  const std::vector<double> eval_days =
      smoke_mode() ? std::vector<double>{45.0} : std::vector<double>{15.0, 45.0, 90.0};
  for (double t : eval_days) {
    Row svt_row, lrr_row, loli_row;
    for (int seed = 1; seed <= kSeeds; ++seed) {
      ReconInstance inst(static_cast<std::uint64_t>(seed), t, 10);
      accumulate(svt_row, svt_reconstruct(inst), inst);
      accumulate(lrr_row, inst.problem.prediction, inst);
      accumulate(loli_row, loli_ir_reconstruct(inst.problem).x, inst);
    }
    const auto emit = [&](const char* name, Row& r) {
      r.all /= kSeeds;
      r.distorted /= kSeeds;
      table.add_row({name, AsciiTable::num(t, 0) + " d", AsciiTable::num(r.all) + " dBm",
                     AsciiTable::num(r.distorted) + " dBm"});
      csv.write_row({name, AsciiTable::num(t, 0), AsciiTable::num(r.all, 4),
                     AsciiTable::num(r.distorted, 4)});
    };
    emit("SVT (property i only)", svt_row);
    emit("LRR prediction only", lrr_row);
    emit("LoLi-IR (full)", loli_row);
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf("\nReading: rank minimization alone reconstructs 'roughly' (paper's wording) --\n"
              "it has no information about distorted entries beyond low rank.  The LRR\n"
              "prediction carries most of the signal; LoLi-IR refines it with the known\n"
              "entries and fresh reference columns.\n\n");
}

// ---- micro benchmarks ----

void BM_SvtComplete(benchmark::State& state) {
  ReconInstance inst(3, 45.0, 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(svt_reconstruct(inst));
  }
}
BENCHMARK(BM_SvtComplete)->Unit(benchmark::kMillisecond);

void BM_LoliIrFull(benchmark::State& state) {
  ReconInstance inst(3, 45.0, 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(loli_ir_reconstruct(inst.problem));
  }
}
BENCHMARK(BM_LoliIrFull)->Unit(benchmark::kMillisecond);

void BM_SvdPaperRoomMatrix(benchmark::State& state) {
  ReconInstance inst(3, 45.0, 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(svd_decompose(inst.x0));
  }
}
BENCHMARK(BM_SvdPaperRoomMatrix)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  run_experiment();
  return tafloc::bench::finish_benchmarks(argc, argv);
}
