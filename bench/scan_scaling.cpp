// Large-grid scaling of the serving hot paths: the KNN fingerprint
// scan and the LoLi-IR reconstruction solve, at 96 / 2 500 / 20 000
// grid cells x 128 / 512 links -- the paper room up to warehouse-scale
// deployments.
//
// Two comparisons per configuration, both written to BENCH_scan.json
// (the CI artefact) before the google-benchmark micro timings run:
//
//   * quantized vs float: per-query latency of the exact float column
//     scan against the int8 pre-pass + exact re-rank (matcher.h).  The
//     two serve bit-identical answers, so the speedup column is the
//     whole story.  Measured at one thread -- the acceptance bar is the
//     single-thread win of the representation, not pool scaling.
//   * backend vs backend: the same quantized scan and the same LoLi-IR
//     solve under the AVX2 kernel backend and the forced-scalar one
//     (linalg/backend.h), quantifying what the SIMD kernels buy.
//
// Honors TAFLOC_BENCH_SMOKE (tiny sizes, no micro timings) so CI's
// bench-smoke job exercises every code path in seconds.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <vector>

#include "bench_util.h"
#include "tafloc/linalg/backend.h"
#include "tafloc/linalg/ops.h"

namespace {

using namespace tafloc;

/// Repeat `op` for ~`budget` and return seconds per operation.
template <typename Op>
double seconds_per_op(Op&& op, std::chrono::milliseconds budget) {
  using clock = std::chrono::steady_clock;
  op();  // warm caches and the thread pool
  const auto t0 = clock::now();
  std::size_t reps = 0;
  while (clock::now() - t0 < budget) {
    op();
    ++reps;
  }
  return std::chrono::duration<double>(clock::now() - t0).count() / static_cast<double>(reps);
}

/// Synthetic deployment-scale fixture: per-link RSS offsets in
/// [-70, -40] dBm plus structured low-rank variation plus noise -- the
/// shape (not the physics) of a surveyed fingerprint matrix, cheap
/// enough to build at 20 000 cells.
struct ScaleFixture {
  Deployment deployment;
  Matrix fingerprints;  ///< links x cells.
  Vector ambient;
  std::vector<Vector> queries;

  ScaleFixture(std::size_t grid_w, std::size_t grid_h, std::size_t links, std::uint64_t seed)
      : deployment(Deployment::perimeter(static_cast<double>(grid_w),
                                         static_cast<double>(grid_h), 1.0, links)) {
    const std::size_t cells = grid_w * grid_h;
    Rng rng(seed);
    constexpr std::size_t kRank = 6;
    const Matrix u = random_gaussian(links, kRank, rng);
    const Matrix v = random_gaussian(kRank, cells, rng);
    fingerprints = u * v;  // structured variation, O(1) dB per entry
    ambient = Vector(links);
    for (std::size_t i = 0; i < links; ++i) {
      const double offset = -70.0 + 30.0 * rng.uniform01();
      ambient[i] = offset;
      for (std::size_t j = 0; j < cells; ++j)
        fingerprints(i, j) = offset + 2.0 * fingerprints(i, j) + rng.normal();
    }
    const std::size_t n_queries = 16;
    queries.reserve(n_queries);
    for (std::size_t q = 0; q < n_queries; ++q) {
      Vector query = fingerprints.col((q * 6151) % cells);
      for (double& v_i : query) v_i += 2.0 * rng.normal();  // observation noise
      queries.push_back(std::move(query));
    }
  }
};

struct ScanTimings {
  double float_ns = 0.0;
  double quantized_ns = 0.0;
  double scalar_quantized_ns = 0.0;
};

ScanTimings time_scans(const ScaleFixture& f, std::chrono::milliseconds budget) {
  const std::size_t k = 4;
  KnnMatcher float_matcher(f.fingerprints.view(), f.deployment.grid(), k);
  KnnMatcher quant_matcher(f.fingerprints.view(), f.deployment.grid(), k);
  QuantizedTier tier;
  tier.rebuild(f.fingerprints.view());
  quant_matcher.attach_quantized_tier(&tier);

  const auto localize_all = [&](const KnnMatcher& m) {
    for (const Vector& q : f.queries) benchmark::DoNotOptimize(m.localize(q));
  };
  const double per_query = 1.0 / static_cast<double>(f.queries.size());

  ScanTimings t;
  t.float_ns = 1e9 * per_query * seconds_per_op([&] { localize_all(float_matcher); }, budget);
  t.quantized_ns =
      1e9 * per_query * seconds_per_op([&] { localize_all(quant_matcher); }, budget);
  if (cpu_supports_avx2()) {
    set_kernel_backend(KernelBackend::kScalar);
    t.scalar_quantized_ns =
        1e9 * per_query * seconds_per_op([&] { localize_all(quant_matcher); }, budget);
    set_kernel_backend(KernelBackend::kAuto);
  } else {
    t.scalar_quantized_ns = t.quantized_ns;  // scalar IS the active backend
  }
  return t;
}

struct SolveTimings {
  double seconds = 0.0;
  double scalar_seconds = 0.0;
  std::size_t iterations = 0;
};

/// One bounded LoLi-IR solve on the fixture: detected distortion mask,
/// evenly spaced reference columns, oracle prediction (the solver does
/// not care how the prediction was made; skipping the LRR fit keeps
/// the 20 000-cell build affordable).
SolveTimings time_solve(const ScaleFixture& f, std::uint64_t seed) {
  using tafloc::bench::smoke_or;
  const std::size_t cells = f.fingerprints.cols();
  Rng rng(seed);

  const DistortionMask mask = DistortionDetector().detect_from_data(f.fingerprints, f.ambient);
  const std::size_t n_refs = 12;
  std::vector<std::size_t> refs(n_refs);
  for (std::size_t r = 0; r < n_refs; ++r) refs[r] = r * cells / n_refs;

  LoliIrProblem problem;
  problem.mask_undistorted = mask.undistorted;
  problem.known = known_entry_matrix(mask, f.ambient);
  problem.prediction = f.fingerprints;
  for (double& v : problem.prediction.data()) v += 0.5 * rng.normal();
  problem.reference_columns = Matrix(f.fingerprints.rows(), n_refs);
  for (std::size_t r = 0; r < n_refs; ++r)
    for (std::size_t i = 0; i < f.fingerprints.rows(); ++i)
      problem.reference_columns(i, r) = f.fingerprints(i, refs[r]);
  problem.reference_indices = refs;
  problem.continuity = continuity_pairs(f.deployment, &mask);
  problem.similarity = similarity_pairs(f.deployment, &mask);

  LoliIrConfig config;
  config.rank = 4;
  config.max_rank = 4;
  config.max_outer_iterations = smoke_or<std::size_t>(6, 2);
  config.cg.max_iterations = smoke_or<std::size_t>(60, 15);

  SolveTimings t;
  {
    using clock = std::chrono::steady_clock;
    const auto t0 = clock::now();
    const LoliIrResult result = loli_ir_reconstruct(problem, config);
    t.seconds = std::chrono::duration<double>(clock::now() - t0).count();
    t.iterations = result.outer_iterations;
  }
  if (cpu_supports_avx2()) {
    set_kernel_backend(KernelBackend::kScalar);
    using clock = std::chrono::steady_clock;
    const auto t0 = clock::now();
    benchmark::DoNotOptimize(loli_ir_reconstruct(problem, config));
    t.scalar_seconds = std::chrono::duration<double>(clock::now() - t0).count();
    set_kernel_backend(KernelBackend::kAuto);
  } else {
    t.scalar_seconds = t.seconds;
  }
  return t;
}

struct ConfigResult {
  std::size_t cells = 0;
  std::size_t links = 0;
  ScanTimings scan;
  SolveTimings solve;
};

void run_json_experiments() {
  using tafloc::bench::smoke_or;
  const auto budget = std::chrono::milliseconds(smoke_or(400, 25));

  // (grid_w, grid_h) pairs: 96 (the paper room's 12 x 8), 2 500, and
  // 20 000 cells; smoke mode stops at a few hundred.
  struct Dims {
    std::size_t w, h;
  };
  const std::vector<Dims> full_grids = {{12, 8}, {50, 50}, {160, 125}};
  const std::vector<Dims> smoke_grids = {{12, 8}, {20, 12}};
  const std::vector<Dims>& grids = tafloc::bench::smoke_mode() ? smoke_grids : full_grids;
  const std::vector<std::size_t> link_counts =
      tafloc::bench::smoke_mode() ? std::vector<std::size_t>{32}
                                  : std::vector<std::size_t>{128, 512};

  // Single-thread timings: the acceptance criterion is the win of the
  // int8 representation and the SIMD kernels, not pool scaling.
  const std::size_t threads_before = global_thread_count();
  set_global_threads(1);

  std::printf("=== scan + solve scaling (single thread; avx2=%d, default backend=%s) ===\n",
              cpu_supports_avx2() ? 1 : 0, kernel_backend_name(active_kernel_backend()));
  std::vector<ConfigResult> results;
  std::uint64_t seed = 1234;
  for (const Dims& g : grids) {
    for (std::size_t links : link_counts) {
      ScaleFixture fixture(g.w, g.h, links, ++seed);
      ConfigResult r;
      r.cells = g.w * g.h;
      r.links = links;
      r.scan = time_scans(fixture, budget);
      r.solve = time_solve(fixture, seed * 31);
      std::printf(
          "  cells=%6zu links=%4zu  scan: float %10.0f ns  quantized %10.0f ns (%.2fx)  "
          "scalar-quantized %10.0f ns   solve: %7.3f s  scalar %7.3f s\n",
          r.cells, r.links, r.scan.float_ns, r.scan.quantized_ns,
          r.scan.float_ns / r.scan.quantized_ns, r.scan.scalar_quantized_ns, r.solve.seconds,
          r.solve.scalar_seconds);
      results.push_back(r);
    }
  }
  set_global_threads(threads_before);

  std::ofstream json("BENCH_scan.json");
  json << "{\n  \"smoke\": " << (tafloc::bench::smoke_mode() ? "true" : "false")
       << ",\n  \"threads\": 1,\n  \"avx2_supported\": "
       << (cpu_supports_avx2() ? "true" : "false") << ",\n  \"default_backend\": \""
       << kernel_backend_name(resolve_kernel_backend()) << "\",\n  \"configs\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ConfigResult& r = results[i];
    json << "    {\"cells\": " << r.cells << ", \"links\": " << r.links
         << ",\n     \"scan\": {\"float_ns\": " << r.scan.float_ns
         << ", \"quantized_ns\": " << r.scan.quantized_ns
         << ", \"quantized_speedup\": " << r.scan.float_ns / r.scan.quantized_ns
         << ", \"scalar_quantized_ns\": " << r.scan.scalar_quantized_ns
         << ", \"backend_speedup\": " << r.scan.scalar_quantized_ns / r.scan.quantized_ns
         << "},\n     \"solve\": {\"seconds\": " << r.solve.seconds
         << ", \"scalar_seconds\": " << r.solve.scalar_seconds
         << ", \"backend_speedup\": " << r.solve.scalar_seconds / r.solve.seconds
         << ", \"outer_iterations\": " << r.solve.iterations << "}}"
         << (i + 1 < results.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::printf("wrote BENCH_scan.json\n\n");
}

// ---- google-benchmark micro timings (skipped in smoke mode) ----

void BM_ScanFloat(benchmark::State& state) {
  const auto cells = static_cast<std::size_t>(state.range(0));
  ScaleFixture f(cells / 8, 8, 128, 7);
  KnnMatcher matcher(f.fingerprints.view(), f.deployment.grid(), 4);
  std::size_t q = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(matcher.localize(f.queries[q++ % f.queries.size()]));
  }
}
BENCHMARK(BM_ScanFloat)->Arg(96)->Arg(2496)->Unit(benchmark::kMicrosecond);

void BM_ScanQuantized(benchmark::State& state) {
  const auto cells = static_cast<std::size_t>(state.range(0));
  ScaleFixture f(cells / 8, 8, 128, 7);
  KnnMatcher matcher(f.fingerprints.view(), f.deployment.grid(), 4);
  QuantizedTier tier;
  tier.rebuild(f.fingerprints.view());
  matcher.attach_quantized_tier(&tier);
  std::size_t q = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(matcher.localize(f.queries[q++ % f.queries.size()]));
  }
}
BENCHMARK(BM_ScanQuantized)->Arg(96)->Arg(2496)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  run_json_experiments();
  return tafloc::bench::finish_benchmarks(argc, argv);
}
