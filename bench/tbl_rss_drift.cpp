// Inline-number reproduction (paper section 1): with no change in the
// environment, RSS drifts ~2.5 dBm after 5 days and ~6 dBm after 45
// days.  We measure the mean ambient-RSS change across the paper room's
// links at the evaluation time points, and verify the drift model's
// calibration anchors.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "tafloc/util/csv.h"
#include "tafloc/util/table.h"

namespace {

using namespace tafloc;
using namespace tafloc::bench;

constexpr double kElapsedDays[] = {3.0, 5.0, 15.0, 45.0, 90.0};
const int kSeeds = smoke_or(5, 1);

void run_experiment() {
  std::printf("=== Section 1 inline numbers: ambient RSS drift over time ===\n");
  std::printf("paper anchors: 2.5 dBm after 5 days, 6 dBm after 45 days\n\n");

  CsvWriter csv(csv_path("tbl_rss_drift"));
  csv.write_row({"t_days", "mean_drift_db", "max_drift_db", "paper_db"});

  AsciiTable table;
  table.set_header({"elapsed", "mean |drift|", "max |drift|", "paper"});

  for (double t : kElapsedDays) {
    double sum = 0.0, worst = 0.0;
    std::size_t count = 0;
    for (int seed = 1; seed <= kSeeds; ++seed) {
      const Scenario s = Scenario::paper_room(static_cast<std::uint64_t>(seed));
      for (std::size_t i = 0; i < s.channel().num_links(); ++i) {
        const double d = std::abs(s.channel().expected_rss(i, std::nullopt, t) -
                                  s.channel().expected_rss(i, std::nullopt, 0.0));
        sum += d;
        worst = std::max(worst, d);
        ++count;
      }
    }
    const double mean_drift = sum / static_cast<double>(count);
    std::string paper = "-";
    if (t == 5.0) paper = "2.5 dBm";
    if (t == 45.0) paper = "6.0 dBm";
    table.add_row({AsciiTable::num(t, 0) + " d", AsciiTable::num(mean_drift) + " dBm",
                   AsciiTable::num(worst), paper});
    csv.write_numeric_row({t, mean_drift, worst, t == 5.0 ? 2.5 : (t == 45.0 ? 6.0 : 0.0)});
  }
  std::fputs(table.render().c_str(), stdout);

  // Also show the drift magnitude law directly from the model.
  const TemporalDriftModel model(10, DriftConfig{}, 1);
  std::printf("\ncalibrated power law g(t) = 2.5 * (t / 5d)^alpha: ");
  for (double t : kElapsedDays) std::printf("g(%g)=%.2f ", t, model.expected_magnitude_db(t));
  std::printf("\n(anchors g(5) = 2.50 and g(45) = 6.00 match the paper by construction)\n\n");
}

// ---- micro benchmarks ----

void BM_ExpectedRss(benchmark::State& state) {
  const Scenario s = Scenario::paper_room(5);
  double t = 0.0;
  for (auto _ : state) {
    t += 0.01;
    benchmark::DoNotOptimize(s.channel().expected_rss(3, Point2{3.0, 2.0}, t));
  }
}
BENCHMARK(BM_ExpectedRss);

void BM_FullSurvey(benchmark::State& state) {
  const Scenario s = Scenario::paper_room(5);
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.collector().survey_all(10.0, rng));
  }
}
BENCHMARK(BM_FullSurvey)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  run_experiment();
  return tafloc::bench::finish_benchmarks(argc, argv);
}
