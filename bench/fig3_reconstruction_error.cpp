// Figure 3 reproduction: fingerprint reconstruction error after
// different elapsed time periods.
//
// Paper (Fig. 3 + section 3): CDFs of the per-entry reconstruction
// error after {3, 5, 15, 45, 90} days; average errors reported as
// 2.7 / 3.3 / 3.6 / 4.1 dBm for 3 / 15 / 45 / 90 days, judged reliable
// because measurement noise is itself 1-4 dBm.
//
// Protocol here: calibrate at t = 0 (full survey), update at each
// elapsed time by re-surveying only the reference locations + one
// ambient scan, run LoLi-IR, and compare the reconstructed matrix to a
// freshly measured validation survey (the paper's comparison; we also
// report the error against the noise-free ground truth, which only a
// simulator can know).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.h"
#include "tafloc/util/csv.h"
#include "tafloc/util/stats.h"
#include "tafloc/util/table.h"

namespace {

using namespace tafloc;
using namespace tafloc::bench;

constexpr double kElapsedDays[] = {3.0, 5.0, 15.0, 45.0, 90.0};
// Paper-reported averages (dBm); the 5-day value is not stated in the
// prose, so it is interpolated between the 3- and 15-day anchors.
constexpr double kPaperMeans[] = {2.7, 2.85, 3.3, 3.6, 4.1};
const int kSeeds = smoke_or(3, 1);
// Smoke mode keeps only the first two elapsed times.
const std::size_t kNumDays = smoke_or(std::size(kElapsedDays), std::size_t{2});

void run_experiment() {
  std::printf("=== Fig. 3: fingerprint reconstruction error vs elapsed time ===\n");
  std::printf("deployment: paper room (10 links, 96 grids of 0.6 m), %d seeds\n\n", kSeeds);

  CsvWriter csv(csv_path("fig3_reconstruction_error"));
  csv.write_row({"t_days", "mean_vs_measured_db", "median_vs_measured_db",
                 "p80_vs_measured_db", "mean_vs_truth_db", "paper_mean_db"});

  AsciiTable table;
  table.set_header({"elapsed", "mean vs measured", "median", "p80", "mean vs truth",
                    "paper mean"});

  std::vector<std::vector<double>> all_measured(kNumDays);

  for (int seed = 1; seed <= kSeeds; ++seed) {
    CalibratedRoom room(static_cast<std::uint64_t>(seed));
    for (std::size_t k = 0; k < kNumDays; ++k) {
      // A fresh system per elapsed time so each update starts from the
      // same t = 0 calibration (the paper updates an aged database, not
      // a chain of reconstructions).
      CalibratedRoom fresh(static_cast<std::uint64_t>(seed));
      const ReconstructionOutcome out = reconstruct_at(fresh, kElapsedDays[k]);
      all_measured[k].insert(all_measured[k].end(), out.errors_vs_measured.begin(),
                             out.errors_vs_measured.end());
      if (seed == 1 && k == 0)
        std::printf("reference locations per update: %zu (vs %zu grids)\n\n", out.references,
                    fresh.scenario.deployment().num_grids());
    }
  }

  for (std::size_t k = 0; k < kNumDays; ++k) {
    // Re-run one seed for the vs-truth column (cheap) -- the measured
    // comparison above already pooled all seeds.
    CalibratedRoom room(1);
    const ReconstructionOutcome out = reconstruct_at(room, kElapsedDays[k], false);
    const double mean_truth = mean(out.errors_vs_truth);

    const std::vector<double>& errs = all_measured[k];
    const double m = mean(errs);
    const double med = percentile(errs, 50.0);
    const double p80 = percentile(errs, 80.0);

    table.add_row({AsciiTable::num(kElapsedDays[k], 0) + " d", AsciiTable::num(m) + " dBm",
                   AsciiTable::num(med), AsciiTable::num(p80), AsciiTable::num(mean_truth),
                   AsciiTable::num(kPaperMeans[k])});
    csv.write_numeric_row({kElapsedDays[k], m, med, p80, mean_truth, kPaperMeans[k]});
  }
  std::fputs(table.render().c_str(), stdout);

  std::printf("\nCDF series (error dBm -> fraction), pooled over seeds:\n");
  for (std::size_t k = 0; k < kNumDays; ++k) {
    char label[32];
    std::snprintf(label, sizeof label, "%2.0f days", kElapsedDays[k]);
    print_cdf_summary(label, all_measured[k], 15.0, "dBm");
  }
  std::printf("\nPaper shape check: error grows monotonically with elapsed time and stays\n"
              "within the 1-4 dBm noise band the paper calls reliable.\n\n");
}

// ---- micro benchmarks: the reconstruction pipeline stages ----

void BM_LoliIrUpdate(benchmark::State& state) {
  CalibratedRoom room(7);
  for (auto _ : state) {
    CalibratedRoom fresh(7);
    const auto out = reconstruct_at(fresh, 45.0, false);
    benchmark::DoNotOptimize(out.errors_vs_truth);
  }
}
BENCHMARK(BM_LoliIrUpdate)->Unit(benchmark::kMillisecond);

void BM_ReferenceSurveyOnly(benchmark::State& state) {
  CalibratedRoom room(7);
  for (auto _ : state) {
    const Matrix fresh = room.scenario.collector().survey_grids(
        room.system.reference_locations(), 45.0, room.rng);
    benchmark::DoNotOptimize(fresh);
  }
}
BENCHMARK(BM_ReferenceSurveyOnly)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  run_experiment();
  return tafloc::bench::finish_benchmarks(argc, argv);
}
