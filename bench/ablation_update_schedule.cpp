// Ablation A4: WHEN to update -- the "time-adaptive" question.
//
// The paper fixes the update instants; this bench sweeps policies over
// a 90-day horizon and reports the cost/accuracy frontier:
//   - never update (the strawman the paper argues against),
//   - fixed every 15 / 30 / 45 days,
//   - adaptive: trigger when the mean ambient drift since the last
//     update exceeds a threshold (UpdateScheduler; the trigger signal
//     is a free target-free scan).
// Accuracy is the mean localization error sampled at 10 checkpoints
// across the horizon; cost is total reference-survey hours.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <functional>

#include "bench_util.h"
#include "tafloc/util/csv.h"
#include "tafloc/util/table.h"

namespace {

using namespace tafloc;
using namespace tafloc::bench;

constexpr double kHorizonDays = 90.0;
const int kSeeds = smoke_or(3, 1);
const std::size_t kTargetsPerCheckpoint = smoke_or(std::size_t{12}, std::size_t{2});

struct PolicyOutcome {
  double mean_error_m = 0.0;
  double survey_hours = 0.0;
  double updates = 0.0;
};

/// Simulate one policy: `should_update(scheduler_decision, t)` decides;
/// pass nullptr for "never".
PolicyOutcome run_policy(const char* kind, double fixed_interval_days,
                         double adaptive_threshold_db) {
  PolicyOutcome out;
  const SurveyCostModel cost;
  for (int seed = 1; seed <= kSeeds; ++seed) {
    CalibratedRoom room(static_cast<std::uint64_t>(seed) + 100);
    SchedulerConfig sched_cfg;
    sched_cfg.staleness_threshold_db = adaptive_threshold_db > 0 ? adaptive_threshold_db : 1e9;
    sched_cfg.max_interval_days = 365.0;
    UpdateScheduler scheduler(room.ambient0, 0.0, sched_cfg);

    double next_fixed = fixed_interval_days;
    double err_sum = 0.0;
    std::size_t err_count = 0;

    for (double t = 9.0; t <= kHorizonDays; t += 9.0) {
      bool update_now = false;
      if (std::string(kind) == "fixed" && t >= next_fixed) {
        update_now = true;
        next_fixed += fixed_interval_days;
      } else if (std::string(kind) == "adaptive") {
        Vector ambient = room.scenario.collector().ambient_scan(t, room.rng);
        update_now = scheduler.observe_ambient(ambient, t);
      }
      if (update_now) {
        const auto report =
            room.system.update_with_collector(room.scenario.collector(), t, room.rng);
        scheduler.notify_updated(
            Vector(room.system.database().ambient()), t);
        out.survey_hours += cost.reference_survey_hours(report.references_surveyed);
        out.updates += 1.0;
      }
      // Checkpoint localization accuracy.
      const auto targets = random_positions(room.scenario.deployment().grid(),
                                            kTargetsPerCheckpoint, room.rng);
      for (const Point2& truth : targets) {
        const Vector y = room.scenario.collector().observe(truth, t, room.rng);
        err_sum += distance(room.system.localize(y), truth);
        ++err_count;
      }
    }
    out.mean_error_m += err_sum / static_cast<double>(err_count);
  }
  out.mean_error_m /= kSeeds;
  out.survey_hours /= kSeeds;
  out.updates /= kSeeds;
  return out;
}

void run_experiment() {
  std::printf("=== Ablation A4: update scheduling policies over %0.f days ===\n", kHorizonDays);
  std::printf("%d seeds; accuracy = mean localization error across 10 checkpoints\n\n", kSeeds);

  CsvWriter csv(csv_path("ablation_update_schedule"));
  csv.write_row({"policy", "updates", "survey_hours", "mean_error_m"});

  AsciiTable table;
  table.set_header({"policy", "updates", "survey hours", "mean error"});
  const auto emit = [&](const char* name, const PolicyOutcome& o) {
    table.add_row({name, AsciiTable::num(o.updates, 1), AsciiTable::num(o.survey_hours, 2) + " h",
                   AsciiTable::num(o.mean_error_m) + " m"});
    csv.write_row({name, AsciiTable::num(o.updates, 2), AsciiTable::num(o.survey_hours, 4),
                   AsciiTable::num(o.mean_error_m, 4)});
  };

  emit("never update", run_policy("never", 0.0, 0.0));
  emit("fixed / 45 d", run_policy("fixed", 45.0, 0.0));
  if (!smoke_mode()) {
    emit("fixed / 30 d", run_policy("fixed", 30.0, 0.0));
    emit("fixed / 15 d", run_policy("fixed", 15.0, 0.0));
    emit("adaptive 4 dB", run_policy("adaptive", 0.0, 4.0));
  }
  emit("adaptive 3 dB", run_policy("adaptive", 0.0, 3.0));
  if (!smoke_mode()) emit("adaptive 2 dB", run_policy("adaptive", 0.0, 2.0));

  std::fputs(table.render().c_str(), stdout);
  std::printf("\nReading: adaptive triggering buys fixed-schedule accuracy at a fraction of\n"
              "the labour -- it updates exactly when the (freely observable) ambient drift\n"
              "says the fingerprints actually moved.\n\n");
}

// ---- micro benchmarks ----

void BM_SchedulerObserve(benchmark::State& state) {
  CalibratedRoom room(9);
  UpdateScheduler sched(room.ambient0, 0.0);
  const Vector ambient = room.scenario.collector().ambient_scan(30.0, room.rng);
  double t = 30.0;
  for (auto _ : state) {
    t += 1e-6;
    benchmark::DoNotOptimize(sched.observe_ambient(ambient, t));
  }
}
BENCHMARK(BM_SchedulerObserve);

void BM_AmbientScan(benchmark::State& state) {
  CalibratedRoom room(9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(room.scenario.collector().ambient_scan(30.0, room.rng));
  }
}
BENCHMARK(BM_AmbientScan)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  run_experiment();
  return tafloc::bench::finish_benchmarks(argc, argv);
}
