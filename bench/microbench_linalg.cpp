// Micro benchmarks of the linear-algebra substrate: the kernels every
// reconstruction and localization path runs on.  Sizes bracket the
// paper room (10 x 96) and the Fig. 4 sweep endpoints.
#include <benchmark/benchmark.h>

#include "tafloc/linalg/cg.h"
#include "tafloc/linalg/cholesky.h"
#include "tafloc/linalg/eig.h"
#include "tafloc/linalg/lu.h"
#include "tafloc/linalg/ops.h"
#include "tafloc/linalg/qr.h"
#include "tafloc/linalg/sparse.h"
#include "tafloc/linalg/svd.h"
#include "tafloc/linalg/vector_ops.h"

namespace {

using namespace tafloc;

Matrix fixture_matrix(std::size_t rows, std::size_t cols, std::uint64_t seed = 9) {
  Rng rng(seed);
  return random_gaussian(rows, cols, rng);
}

void BM_MatrixMultiply(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Matrix a = fixture_matrix(n, n, 1);
  const Matrix b = fixture_matrix(n, n, 2);
  for (auto _ : state) benchmark::DoNotOptimize(a * b);
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_MatrixMultiply)->Arg(16)->Arg(64)->Arg(128)->Complexity(benchmark::oNCubed);

void BM_QrDecompose(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Matrix a = fixture_matrix(n, n / 2);
  for (auto _ : state) benchmark::DoNotOptimize(qr_decompose(a));
}
BENCHMARK(BM_QrDecompose)->Arg(32)->Arg(96);

void BM_QrPivoted(benchmark::State& state) {
  // The reference-selection workload: wide fingerprint-shaped matrices.
  const auto cols = static_cast<std::size_t>(state.range(0));
  const Matrix a = fixture_matrix(10, cols);
  for (auto _ : state) benchmark::DoNotOptimize(qr_decompose_pivoted(a));
}
BENCHMARK(BM_QrPivoted)->Arg(96)->Arg(400)->Arg(1600);

void BM_SvdDecompose(benchmark::State& state) {
  const auto cols = static_cast<std::size_t>(state.range(0));
  const Matrix a = fixture_matrix(10, cols);
  for (auto _ : state) benchmark::DoNotOptimize(svd_decompose(a));
}
BENCHMARK(BM_SvdDecompose)->Arg(96)->Arg(400)->Arg(1600)->Unit(benchmark::kMicrosecond);

void BM_CholeskySolve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  const Matrix g = random_gaussian(n + 4, n, rng);
  Matrix a = gram_product(g, g);
  for (std::size_t i = 0; i < n; ++i) a(i, i) += 1.0;
  Vector b(n);
  for (double& v : b) v = rng.normal();
  for (auto _ : state) benchmark::DoNotOptimize(solve_spd(a, b));
}
BENCHMARK(BM_CholeskySolve)->Arg(96)->Arg(400);

void BM_LuSolve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(4);
  const Matrix a = random_gaussian(n, n, rng);
  Vector b(n);
  for (double& v : b) v = rng.normal();
  for (auto _ : state) benchmark::DoNotOptimize(solve_linear(a, b));
}
BENCHMARK(BM_LuSolve)->Arg(96)->Arg(256);

void BM_ConjugateGradient(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(5);
  const Matrix g = random_gaussian(n + 8, n, rng);
  Matrix a = gram_product(g, g);
  for (std::size_t i = 0; i < n; ++i) a(i, i) += 1.0;
  Vector b(n);
  for (double& v : b) v = rng.normal();
  const Vector x0(n, 0.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        conjugate_gradient([&](const Vector& v) { return multiply(a, v); }, b, x0));
  }
}
BENCHMARK(BM_ConjugateGradient)->Arg(96)->Arg(400)->Unit(benchmark::kMicrosecond);

void BM_SparseMatvec(benchmark::State& state) {
  // RTI weight-model shape at the Fig. 4 endpoint: 60 x 3600, ~3% dense.
  const auto cols = static_cast<std::size_t>(state.range(0));
  Rng rng(6);
  std::vector<Triplet> triplets;
  for (std::size_t r = 0; r < 60; ++r)
    for (std::size_t c = 0; c < cols; ++c)
      if (rng.bernoulli(0.03)) triplets.push_back({r, c, rng.normal()});
  const SparseMatrix w(60, cols, std::move(triplets));
  Vector x(cols);
  for (double& v : x) v = rng.normal();
  for (auto _ : state) benchmark::DoNotOptimize(w.multiply(x));
}
BENCHMARK(BM_SparseMatvec)->Arg(900)->Arg(3600);

void BM_EigSymmetric(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(7);
  const Matrix g = random_gaussian(n, n, rng);
  Matrix a = g + g.transposed();
  for (auto _ : state) benchmark::DoNotOptimize(eig_symmetric(a));
}
BENCHMARK(BM_EigSymmetric)->Arg(16)->Arg(64)->Unit(benchmark::kMicrosecond);

void BM_SingularValueShrink(benchmark::State& state) {
  const Matrix a = fixture_matrix(10, 96, 8);
  for (auto _ : state) benchmark::DoNotOptimize(singular_value_shrink(a, 1.0));
}
BENCHMARK(BM_SingularValueShrink)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
