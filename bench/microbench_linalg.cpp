// Micro benchmarks of the linear-algebra substrate: the kernels every
// reconstruction and localization path runs on.  Sizes bracket the
// paper room (10 x 96) and the Fig. 4 sweep endpoints.
//
// Before the google-benchmark suite runs, three experiments write
// BENCH_linalg.json (the CI artefact): a thread-scaling sweep of the
// destination-passing gemm at 1/2/4/8 threads, copy-vs-view
// comparisons of the strided-view kernels (column scan and gemm on a
// column range) that track the zero-copy win of the view layer, and a
// KNN per-query latency comparison with telemetry absent / disabled /
// enabled that keeps the "disabled telemetry is free" claim honest.
// The same KNN loop is re-run under request tracing -- scope + stage
// per query -- with tracing off, sampled at 1%, and sampled at 100%,
// so the artefact records the tracing tax at both ends of the sampling
// dial (the acceptance bar is < 2% with tracing off).  With
// TAFLOC_BENCH_TELEMETRY set, the enabled run's registry snapshot is
// embedded in the JSON record.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <fstream>

#include "bench_util.h"
#include "tafloc/exec/exec_config.h"
#include "tafloc/exec/workspace.h"
#include "tafloc/telemetry/metrics.h"
#include "tafloc/telemetry/trace.h"
#include "tafloc/linalg/cg.h"
#include "tafloc/linalg/cholesky.h"
#include "tafloc/linalg/eig.h"
#include "tafloc/linalg/lu.h"
#include "tafloc/linalg/ops.h"
#include "tafloc/linalg/qr.h"
#include "tafloc/linalg/sparse.h"
#include "tafloc/linalg/svd.h"
#include "tafloc/linalg/vector_ops.h"

namespace {

using namespace tafloc;

Matrix fixture_matrix(std::size_t rows, std::size_t cols, std::uint64_t seed = 9) {
  Rng rng(seed);
  return random_gaussian(rows, cols, rng);
}

void BM_MatrixMultiply(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Matrix a = fixture_matrix(n, n, 1);
  const Matrix b = fixture_matrix(n, n, 2);
  for (auto _ : state) benchmark::DoNotOptimize(a * b);
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_MatrixMultiply)->Arg(16)->Arg(64)->Arg(128)->Complexity(benchmark::oNCubed);

void BM_MultiplyInto(benchmark::State& state) {
  // Destination-passing gemm: same kernel as operator*, zero allocation.
  const auto n = static_cast<std::size_t>(state.range(0));
  const Matrix a = fixture_matrix(n, n, 1);
  const Matrix b = fixture_matrix(n, n, 2);
  Matrix out(n, n);
  for (auto _ : state) {
    multiply_into(a, b, out);
    benchmark::DoNotOptimize(out.data().data());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_MultiplyInto)->Arg(64)->Arg(128)->Arg(256)->Complexity(benchmark::oNCubed);

void BM_MultiplyIntoThreads(benchmark::State& state) {
  // 512 x 512 gemm at an explicit pool size; the acceptance target is
  // >= 2x ops/sec from 1 -> 4/8 threads (also captured in the JSON).
  const std::size_t before = global_thread_count();
  set_global_threads(static_cast<std::size_t>(state.range(0)));
  const Matrix a = fixture_matrix(512, 512, 1);
  const Matrix b = fixture_matrix(512, 512, 2);
  Matrix out(512, 512);
  for (auto _ : state) {
    multiply_into(a, b, out);
    benchmark::DoNotOptimize(out.data().data());
  }
  set_global_threads(before);
}
BENCHMARK(BM_MultiplyIntoThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_GramProductInto(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Matrix a = fixture_matrix(n, n, 3);
  Matrix out(n, n);
  for (auto _ : state) {
    gram_product_into(a, a, out);
    benchmark::DoNotOptimize(out.data().data());
  }
}
BENCHMARK(BM_GramProductInto)->Arg(64)->Arg(256);

void BM_TransposedInto(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Matrix a = fixture_matrix(n, n, 4);
  Matrix out(n, n);
  for (auto _ : state) {
    transposed_into(a, out);
    benchmark::DoNotOptimize(out.data().data());
  }
}
BENCHMARK(BM_TransposedInto)->Arg(128)->Arg(512);

void BM_AddScaledInto(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Matrix x = fixture_matrix(n, n, 5);
  Matrix y(n, n);
  for (auto _ : state) {
    add_scaled_into(x, 0.5, y);
    benchmark::DoNotOptimize(y.data().data());
  }
}
BENCHMARK(BM_AddScaledInto)->Arg(128)->Arg(512);

void BM_WorkspaceLeaseReuse(benchmark::State& state) {
  // Steady-state lease cost: after warm-up this is pointer bookkeeping
  // plus the zero-fill, never malloc.
  Workspace ws;
  for (auto _ : state) {
    auto a = ws.matrix(96, 12);
    auto b = ws.matrix(96, 12);
    benchmark::DoNotOptimize(&*a);
    benchmark::DoNotOptimize(&*b);
  }
}
BENCHMARK(BM_WorkspaceLeaseReuse);

void BM_QrDecompose(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Matrix a = fixture_matrix(n, n / 2);
  for (auto _ : state) benchmark::DoNotOptimize(qr_decompose(a));
}
BENCHMARK(BM_QrDecompose)->Arg(32)->Arg(96);

void BM_QrPivoted(benchmark::State& state) {
  // The reference-selection workload: wide fingerprint-shaped matrices.
  const auto cols = static_cast<std::size_t>(state.range(0));
  const Matrix a = fixture_matrix(10, cols);
  for (auto _ : state) benchmark::DoNotOptimize(qr_decompose_pivoted(a));
}
BENCHMARK(BM_QrPivoted)->Arg(96)->Arg(400)->Arg(1600);

void BM_SvdDecompose(benchmark::State& state) {
  const auto cols = static_cast<std::size_t>(state.range(0));
  const Matrix a = fixture_matrix(10, cols);
  for (auto _ : state) benchmark::DoNotOptimize(svd_decompose(a));
}
BENCHMARK(BM_SvdDecompose)->Arg(96)->Arg(400)->Arg(1600)->Unit(benchmark::kMicrosecond);

void BM_CholeskySolve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  const Matrix g = random_gaussian(n + 4, n, rng);
  Matrix a = gram_product(g, g);
  for (std::size_t i = 0; i < n; ++i) a(i, i) += 1.0;
  Vector b(n);
  for (double& v : b) v = rng.normal();
  for (auto _ : state) benchmark::DoNotOptimize(solve_spd(a, b));
}
BENCHMARK(BM_CholeskySolve)->Arg(96)->Arg(400);

void BM_LuSolve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(4);
  const Matrix a = random_gaussian(n, n, rng);
  Vector b(n);
  for (double& v : b) v = rng.normal();
  for (auto _ : state) benchmark::DoNotOptimize(solve_linear(a, b));
}
BENCHMARK(BM_LuSolve)->Arg(96)->Arg(256);

void BM_ConjugateGradient(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(5);
  const Matrix g = random_gaussian(n + 8, n, rng);
  Matrix a = gram_product(g, g);
  for (std::size_t i = 0; i < n; ++i) a(i, i) += 1.0;
  Vector b(n);
  for (double& v : b) v = rng.normal();
  const Vector x0(n, 0.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        conjugate_gradient([&](const Vector& v) { return multiply(a, v); }, b, x0));
  }
}
BENCHMARK(BM_ConjugateGradient)->Arg(96)->Arg(400)->Unit(benchmark::kMicrosecond);

void BM_SparseMatvec(benchmark::State& state) {
  // RTI weight-model shape at the Fig. 4 endpoint: 60 x 3600, ~3% dense.
  const auto cols = static_cast<std::size_t>(state.range(0));
  Rng rng(6);
  std::vector<Triplet> triplets;
  for (std::size_t r = 0; r < 60; ++r)
    for (std::size_t c = 0; c < cols; ++c)
      if (rng.bernoulli(0.03)) triplets.push_back({r, c, rng.normal()});
  const SparseMatrix w(60, cols, std::move(triplets));
  Vector x(cols);
  for (double& v : x) v = rng.normal();
  for (auto _ : state) benchmark::DoNotOptimize(w.multiply(x));
}
BENCHMARK(BM_SparseMatvec)->Arg(900)->Arg(3600);

void BM_EigSymmetric(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(7);
  const Matrix g = random_gaussian(n, n, rng);
  Matrix a = g + g.transposed();
  for (auto _ : state) benchmark::DoNotOptimize(eig_symmetric(a));
}
BENCHMARK(BM_EigSymmetric)->Arg(16)->Arg(64)->Unit(benchmark::kMicrosecond);

void BM_SingularValueShrink(benchmark::State& state) {
  const Matrix a = fixture_matrix(10, 96, 8);
  for (auto _ : state) benchmark::DoNotOptimize(singular_value_shrink(a, 1.0));
}
BENCHMARK(BM_SingularValueShrink)->Unit(benchmark::kMicrosecond);

void BM_ColumnScanCopy(benchmark::State& state) {
  // Sum every column through Matrix::col (allocates + copies the
  // column) -- the pre-view idiom of the matcher scan loops.
  const Matrix m = fixture_matrix(96, 400, 10);
  for (auto _ : state) {
    double acc = 0.0;
    for (std::size_t j = 0; j < m.cols(); ++j) {
      const Vector c = m.col(j);
      for (double v : c) acc += v;
    }
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_ColumnScanCopy);

void BM_ColumnScanView(benchmark::State& state) {
  // Same scan through col_view: strided reads, zero allocation.
  const Matrix m = fixture_matrix(96, 400, 10);
  for (auto _ : state) {
    double acc = 0.0;
    for (std::size_t j = 0; j < m.cols(); ++j) {
      const ConstVectorView c = m.col_view(j);
      for (std::size_t i = 0; i < c.size(); ++i) acc += c[i];
    }
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_ColumnScanView);

void BM_GemmColumnRangeCopy(benchmark::State& state) {
  const Matrix a = fixture_matrix(128, 256, 11);
  const Matrix b = fixture_matrix(128, 128, 12);
  Matrix out(128, 128);
  for (auto _ : state) {
    const Matrix mid(a.columns_view(64, 128));  // materialize the slice
    multiply_into(mid, b, out);
    benchmark::DoNotOptimize(out.data().data());
  }
}
BENCHMARK(BM_GemmColumnRangeCopy);

void BM_GemmColumnRangeView(benchmark::State& state) {
  const Matrix a = fixture_matrix(128, 256, 11);
  const Matrix b = fixture_matrix(128, 128, 12);
  Matrix out(128, 128);
  for (auto _ : state) {
    multiply_into(a.columns_view(64, 128), b.view(), out.view());
    benchmark::DoNotOptimize(out.data().data());
  }
}
BENCHMARK(BM_GemmColumnRangeView);

// ---- BENCH_linalg.json: thread scaling + copy-vs-view ----

/// Repeat `op` for ~`budget` and return operations per second.
template <typename Op>
double ops_per_sec(Op&& op, std::chrono::milliseconds budget) {
  using clock = std::chrono::steady_clock;
  op();  // warm caches (and the pool, for threaded ops)
  const auto t0 = clock::now();
  std::size_t reps = 0;
  while (clock::now() - t0 < budget) {
    op();
    ++reps;
  }
  const double seconds = std::chrono::duration<double>(clock::now() - t0).count();
  return static_cast<double>(reps) / seconds;
}

struct CopyVsView {
  const char* name;
  double copy_ops = 0.0;
  double view_ops = 0.0;
};

void run_json_experiments() {
  using tafloc::bench::smoke_or;
  // Smoke mode shrinks problem sizes and timing budgets so CI's
  // bench-smoke job still produces a (noisy) BENCH_linalg.json fast.
  const std::size_t n = smoke_or<std::size_t>(512, 64);
  const auto budget = std::chrono::milliseconds(smoke_or(500, 20));

  // 1) gemm thread scaling.
  std::printf("=== gemm thread scaling: %zu x %zu multiply_into ===\n", n, n);
  const std::size_t before = global_thread_count();
  const Matrix a = fixture_matrix(n, n, 1);
  const Matrix b = fixture_matrix(n, n, 2);
  Matrix out(n, n);
  const std::size_t counts[] = {1, 2, 4, 8};
  double scaling[4] = {};
  for (std::size_t i = 0; i < 4; ++i) {
    set_global_threads(counts[i]);
    scaling[i] = ops_per_sec([&] { multiply_into(a, b, out); }, budget);
    std::printf("  threads=%zu  %8.2f ops/s  (%.2fx vs 1 thread)\n", counts[i], scaling[i],
                scaling[i] / scaling[0]);
  }
  set_global_threads(before);

  // 2) copy-vs-view on the strided-view kernels.
  std::printf("=== copy vs view: strided column scan, gemm on a column range ===\n");
  const std::size_t rows = smoke_or<std::size_t>(96, 24);
  const std::size_t cols = smoke_or<std::size_t>(400, 40);
  const Matrix fp = fixture_matrix(rows, cols, 10);
  CopyVsView cases[2] = {{"column_scan"}, {"gemm_column_range"}};
  cases[0].copy_ops = ops_per_sec(
      [&] {
        double acc = 0.0;
        for (std::size_t j = 0; j < fp.cols(); ++j) {
          const Vector c = fp.col(j);
          for (double v : c) acc += v;
        }
        benchmark::DoNotOptimize(acc);
      },
      budget);
  cases[0].view_ops = ops_per_sec(
      [&] {
        double acc = 0.0;
        for (std::size_t j = 0; j < fp.cols(); ++j) {
          const ConstVectorView c = fp.col_view(j);
          for (std::size_t i = 0; i < c.size(); ++i) acc += c[i];
        }
        benchmark::DoNotOptimize(acc);
      },
      budget);
  const std::size_t g = smoke_or<std::size_t>(128, 24);
  const Matrix ga = fixture_matrix(g, 2 * g, 11);
  const Matrix gb = fixture_matrix(g, g, 12);
  Matrix gout(g, g);
  cases[1].copy_ops = ops_per_sec(
      [&] {
        const Matrix mid(ga.columns_view(g / 2, g));
        multiply_into(mid, gb, gout);
      },
      budget);
  cases[1].view_ops =
      ops_per_sec([&] { multiply_into(ga.columns_view(g / 2, g), gb.view(), gout.view()); },
                  budget);
  for (const CopyVsView& c : cases) {
    std::printf("  %-18s copy %10.2f ops/s   view %10.2f ops/s   (view/copy %.2fx)\n",
                c.name, c.copy_ops, c.view_ops, c.view_ops / c.copy_ops);
  }

  // 3) KNN per-query latency with telemetry absent / disabled / enabled.
  //    The acceptance bar is disabled-vs-none within noise (< 5%): a
  //    detached matcher and one attached to a disabled registry run the
  //    same null-pointer branch per query.
  std::printf("=== knn localize: telemetry absent / disabled / enabled ===\n");
  const Scenario scenario = Scenario::paper_room(42);
  Rng rng(99);
  const Matrix fingerprints = scenario.collector().survey_all(0.0, rng);
  const std::size_t n_queries = 16;
  std::vector<Vector> queries;
  queries.reserve(n_queries);
  for (std::size_t q = 0; q < n_queries; ++q) {
    queries.push_back(fingerprints.col((q * 37) % fingerprints.cols()));
  }
  KnnMatcher knn_none(fingerprints, scenario.deployment().grid(), 4);
  KnnMatcher knn_disabled(fingerprints, scenario.deployment().grid(), 4);
  TelemetryConfig disabled_config;
  disabled_config.enabled = false;
  MetricRegistry disabled_registry(disabled_config);
  knn_disabled.attach_telemetry(&disabled_registry);
  KnnMatcher knn_enabled(fingerprints, scenario.deployment().grid(), 4);
  MetricRegistry enabled_registry;
  knn_enabled.attach_telemetry(&enabled_registry);

  const auto localize_all = [&](const KnnMatcher& m) {
    for (const Vector& q : queries) benchmark::DoNotOptimize(m.localize(q));
  };
  const double reps_per_query = static_cast<double>(n_queries);
  const double ns_none =
      1e9 / (ops_per_sec([&] { localize_all(knn_none); }, budget) * reps_per_query);
  const double ns_disabled =
      1e9 / (ops_per_sec([&] { localize_all(knn_disabled); }, budget) * reps_per_query);
  const double ns_enabled =
      1e9 / (ops_per_sec([&] { localize_all(knn_enabled); }, budget) * reps_per_query);
  const double disabled_overhead = ns_disabled / ns_none - 1.0;
  const double enabled_overhead = ns_enabled / ns_none - 1.0;
  std::printf("  none %9.1f ns/query   disabled %9.1f ns/query (%+.1f%%)   enabled %9.1f "
              "ns/query (%+.1f%%)\n",
              ns_none, ns_disabled, 100.0 * disabled_overhead, ns_enabled,
              100.0 * enabled_overhead);

  // 4) the same KNN loop under request tracing.  "off" is an inactive
  //    tracer (no ring, no slow log, no sampler): the per-query cost is
  //    one branch in TraceScope plus a thread-local load per stage.
  //    1% / 100% sampling bound the real serving configurations.
  std::printf("=== knn localize under tracing: off / 1%% sampled / 100%% sampled ===\n");
  TracerConfig off_config;
  off_config.ring_capacity = 0;
  off_config.slow_log_capacity = 0;
  off_config.sample_every = 0;
  Tracer tracer_off(off_config);
  TracerConfig sampled_config;
  sampled_config.ring_capacity = 1024;
  sampled_config.sample_every = 100;
  Tracer tracer_1pct(sampled_config);
  sampled_config.sample_every = 1;
  Tracer tracer_100pct(sampled_config);

  const auto localize_traced = [&](Tracer& tracer) {
    for (const Vector& q : queries) {
      TraceScope scope(tracer, {}, 0);
      TraceStage stage("bench.knn");
      benchmark::DoNotOptimize(knn_none.localize(q));
    }
  };
  const double ns_trace_off =
      1e9 / (ops_per_sec([&] { localize_traced(tracer_off); }, budget) * reps_per_query);
  const double ns_trace_1pct =
      1e9 / (ops_per_sec([&] { localize_traced(tracer_1pct); }, budget) * reps_per_query);
  const double ns_trace_100pct =
      1e9 / (ops_per_sec([&] { localize_traced(tracer_100pct); }, budget) * reps_per_query);
  const double trace_off_overhead = ns_trace_off / ns_none - 1.0;
  const double trace_1pct_overhead = ns_trace_1pct / ns_none - 1.0;
  const double trace_100pct_overhead = ns_trace_100pct / ns_none - 1.0;
  std::printf("  off %9.1f ns/query (%+.1f%%)   1%% %9.1f ns/query (%+.1f%%)   100%% %9.1f "
              "ns/query (%+.1f%%)\n",
              ns_trace_off, 100.0 * trace_off_overhead, ns_trace_1pct,
              100.0 * trace_1pct_overhead, ns_trace_100pct, 100.0 * trace_100pct_overhead);

  std::ofstream json("BENCH_linalg.json");
  json << "{\n  \"unit\": \"ops_per_sec\",\n  \"smoke\": "
       << (tafloc::bench::smoke_mode() ? "true" : "false") << ",\n";
  json << "  \"thread_scaling\": {\n    \"benchmark\": \"multiply_into_" << n << "x" << n
       << "\",\n    \"results\": [\n";
  for (std::size_t i = 0; i < 4; ++i) {
    json << "      {\"threads\": " << counts[i] << ", \"ops_per_sec\": " << scaling[i]
         << ", \"speedup\": " << scaling[i] / scaling[0] << "}" << (i + 1 < 4 ? "," : "")
         << "\n";
  }
  json << "    ]\n  },\n  \"copy_vs_view\": [\n";
  for (std::size_t i = 0; i < 2; ++i) {
    json << "    {\"case\": \"" << cases[i].name
         << "\", \"copy_ops_per_sec\": " << cases[i].copy_ops
         << ", \"view_ops_per_sec\": " << cases[i].view_ops
         << ", \"view_over_copy\": " << cases[i].view_ops / cases[i].copy_ops << "}"
         << (i + 1 < 2 ? "," : "") << "\n";
  }
  json << "  ],\n  \"knn_telemetry\": {\n"
       << "    \"queries\": " << n_queries << ",\n"
       << "    \"per_query_ns\": {\"none\": " << ns_none << ", \"disabled\": " << ns_disabled
       << ", \"enabled\": " << ns_enabled << "},\n"
       << "    \"disabled_overhead\": " << disabled_overhead
       << ",\n    \"enabled_overhead\": " << enabled_overhead << "\n  },\n"
       << "  \"knn_tracing\": {\n"
       << "    \"queries\": " << n_queries << ",\n"
       << "    \"per_query_ns\": {\"baseline\": " << ns_none
       << ", \"off\": " << ns_trace_off << ", \"sample_1pct\": " << ns_trace_1pct
       << ", \"sample_100pct\": " << ns_trace_100pct << "},\n"
       << "    \"off_overhead\": " << trace_off_overhead
       << ",\n    \"sample_1pct_overhead\": " << trace_1pct_overhead
       << ",\n    \"sample_100pct_overhead\": " << trace_100pct_overhead << "\n  }";
  if (tafloc::bench::telemetry_mode()) {
    // The enabled run's registry, embedded so the artefact records the
    // query counters and latency histogram behind the timings above.
    json << ",\n  \"telemetry\": " << tafloc::bench::telemetry_json_array(enabled_registry);
  }
  json << "\n}\n";
  std::printf("wrote BENCH_linalg.json\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  run_json_experiments();
  return tafloc::bench::finish_benchmarks(argc, argv);
}
