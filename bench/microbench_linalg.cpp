// Micro benchmarks of the linear-algebra substrate: the kernels every
// reconstruction and localization path runs on.  Sizes bracket the
// paper room (10 x 96) and the Fig. 4 sweep endpoints.
//
// Before the google-benchmark suite runs, a thread-scaling experiment
// times the destination-passing gemm at 1/2/4/8 threads and writes
// BENCH_linalg.json (ops/sec per thread count) -- the CI artefact that
// tracks the parallel speedup.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <fstream>

#include "tafloc/exec/exec_config.h"
#include "tafloc/exec/workspace.h"
#include "tafloc/linalg/cg.h"
#include "tafloc/linalg/cholesky.h"
#include "tafloc/linalg/eig.h"
#include "tafloc/linalg/lu.h"
#include "tafloc/linalg/ops.h"
#include "tafloc/linalg/qr.h"
#include "tafloc/linalg/sparse.h"
#include "tafloc/linalg/svd.h"
#include "tafloc/linalg/vector_ops.h"

namespace {

using namespace tafloc;

Matrix fixture_matrix(std::size_t rows, std::size_t cols, std::uint64_t seed = 9) {
  Rng rng(seed);
  return random_gaussian(rows, cols, rng);
}

void BM_MatrixMultiply(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Matrix a = fixture_matrix(n, n, 1);
  const Matrix b = fixture_matrix(n, n, 2);
  for (auto _ : state) benchmark::DoNotOptimize(a * b);
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_MatrixMultiply)->Arg(16)->Arg(64)->Arg(128)->Complexity(benchmark::oNCubed);

void BM_MultiplyInto(benchmark::State& state) {
  // Destination-passing gemm: same kernel as operator*, zero allocation.
  const auto n = static_cast<std::size_t>(state.range(0));
  const Matrix a = fixture_matrix(n, n, 1);
  const Matrix b = fixture_matrix(n, n, 2);
  Matrix out(n, n);
  for (auto _ : state) {
    multiply_into(a, b, out);
    benchmark::DoNotOptimize(out.data().data());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_MultiplyInto)->Arg(64)->Arg(128)->Arg(256)->Complexity(benchmark::oNCubed);

void BM_MultiplyIntoThreads(benchmark::State& state) {
  // 512 x 512 gemm at an explicit pool size; the acceptance target is
  // >= 2x ops/sec from 1 -> 4/8 threads (also captured in the JSON).
  const std::size_t before = global_thread_count();
  set_global_threads(static_cast<std::size_t>(state.range(0)));
  const Matrix a = fixture_matrix(512, 512, 1);
  const Matrix b = fixture_matrix(512, 512, 2);
  Matrix out(512, 512);
  for (auto _ : state) {
    multiply_into(a, b, out);
    benchmark::DoNotOptimize(out.data().data());
  }
  set_global_threads(before);
}
BENCHMARK(BM_MultiplyIntoThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_GramProductInto(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Matrix a = fixture_matrix(n, n, 3);
  Matrix out(n, n);
  for (auto _ : state) {
    gram_product_into(a, a, out);
    benchmark::DoNotOptimize(out.data().data());
  }
}
BENCHMARK(BM_GramProductInto)->Arg(64)->Arg(256);

void BM_TransposedInto(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Matrix a = fixture_matrix(n, n, 4);
  Matrix out(n, n);
  for (auto _ : state) {
    transposed_into(a, out);
    benchmark::DoNotOptimize(out.data().data());
  }
}
BENCHMARK(BM_TransposedInto)->Arg(128)->Arg(512);

void BM_AddScaledInto(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Matrix x = fixture_matrix(n, n, 5);
  Matrix y(n, n);
  for (auto _ : state) {
    add_scaled_into(x, 0.5, y);
    benchmark::DoNotOptimize(y.data().data());
  }
}
BENCHMARK(BM_AddScaledInto)->Arg(128)->Arg(512);

void BM_WorkspaceLeaseReuse(benchmark::State& state) {
  // Steady-state lease cost: after warm-up this is pointer bookkeeping
  // plus the zero-fill, never malloc.
  Workspace ws;
  for (auto _ : state) {
    auto a = ws.matrix(96, 12);
    auto b = ws.matrix(96, 12);
    benchmark::DoNotOptimize(&*a);
    benchmark::DoNotOptimize(&*b);
  }
}
BENCHMARK(BM_WorkspaceLeaseReuse);

void BM_QrDecompose(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Matrix a = fixture_matrix(n, n / 2);
  for (auto _ : state) benchmark::DoNotOptimize(qr_decompose(a));
}
BENCHMARK(BM_QrDecompose)->Arg(32)->Arg(96);

void BM_QrPivoted(benchmark::State& state) {
  // The reference-selection workload: wide fingerprint-shaped matrices.
  const auto cols = static_cast<std::size_t>(state.range(0));
  const Matrix a = fixture_matrix(10, cols);
  for (auto _ : state) benchmark::DoNotOptimize(qr_decompose_pivoted(a));
}
BENCHMARK(BM_QrPivoted)->Arg(96)->Arg(400)->Arg(1600);

void BM_SvdDecompose(benchmark::State& state) {
  const auto cols = static_cast<std::size_t>(state.range(0));
  const Matrix a = fixture_matrix(10, cols);
  for (auto _ : state) benchmark::DoNotOptimize(svd_decompose(a));
}
BENCHMARK(BM_SvdDecompose)->Arg(96)->Arg(400)->Arg(1600)->Unit(benchmark::kMicrosecond);

void BM_CholeskySolve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  const Matrix g = random_gaussian(n + 4, n, rng);
  Matrix a = gram_product(g, g);
  for (std::size_t i = 0; i < n; ++i) a(i, i) += 1.0;
  Vector b(n);
  for (double& v : b) v = rng.normal();
  for (auto _ : state) benchmark::DoNotOptimize(solve_spd(a, b));
}
BENCHMARK(BM_CholeskySolve)->Arg(96)->Arg(400);

void BM_LuSolve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(4);
  const Matrix a = random_gaussian(n, n, rng);
  Vector b(n);
  for (double& v : b) v = rng.normal();
  for (auto _ : state) benchmark::DoNotOptimize(solve_linear(a, b));
}
BENCHMARK(BM_LuSolve)->Arg(96)->Arg(256);

void BM_ConjugateGradient(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(5);
  const Matrix g = random_gaussian(n + 8, n, rng);
  Matrix a = gram_product(g, g);
  for (std::size_t i = 0; i < n; ++i) a(i, i) += 1.0;
  Vector b(n);
  for (double& v : b) v = rng.normal();
  const Vector x0(n, 0.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        conjugate_gradient([&](const Vector& v) { return multiply(a, v); }, b, x0));
  }
}
BENCHMARK(BM_ConjugateGradient)->Arg(96)->Arg(400)->Unit(benchmark::kMicrosecond);

void BM_SparseMatvec(benchmark::State& state) {
  // RTI weight-model shape at the Fig. 4 endpoint: 60 x 3600, ~3% dense.
  const auto cols = static_cast<std::size_t>(state.range(0));
  Rng rng(6);
  std::vector<Triplet> triplets;
  for (std::size_t r = 0; r < 60; ++r)
    for (std::size_t c = 0; c < cols; ++c)
      if (rng.bernoulli(0.03)) triplets.push_back({r, c, rng.normal()});
  const SparseMatrix w(60, cols, std::move(triplets));
  Vector x(cols);
  for (double& v : x) v = rng.normal();
  for (auto _ : state) benchmark::DoNotOptimize(w.multiply(x));
}
BENCHMARK(BM_SparseMatvec)->Arg(900)->Arg(3600);

void BM_EigSymmetric(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(7);
  const Matrix g = random_gaussian(n, n, rng);
  Matrix a = g + g.transposed();
  for (auto _ : state) benchmark::DoNotOptimize(eig_symmetric(a));
}
BENCHMARK(BM_EigSymmetric)->Arg(16)->Arg(64)->Unit(benchmark::kMicrosecond);

void BM_SingularValueShrink(benchmark::State& state) {
  const Matrix a = fixture_matrix(10, 96, 8);
  for (auto _ : state) benchmark::DoNotOptimize(singular_value_shrink(a, 1.0));
}
BENCHMARK(BM_SingularValueShrink)->Unit(benchmark::kMicrosecond);

/// Time one 512 x 512 multiply_into at the given pool size; returns
/// operations per second over ~0.5 s of repetitions.
double gemm_ops_per_sec(std::size_t threads) {
  set_global_threads(threads);
  const Matrix a = fixture_matrix(512, 512, 1);
  const Matrix b = fixture_matrix(512, 512, 2);
  Matrix out(512, 512);
  multiply_into(a, b, out);  // warm the pool and the caches

  using clock = std::chrono::steady_clock;
  const auto t0 = clock::now();
  std::size_t reps = 0;
  while (clock::now() - t0 < std::chrono::milliseconds(500)) {
    multiply_into(a, b, out);
    benchmark::DoNotOptimize(out.data().data());
    ++reps;
  }
  const double seconds = std::chrono::duration<double>(clock::now() - t0).count();
  return static_cast<double>(reps) / seconds;
}

void run_thread_scaling_experiment() {
  std::printf("=== gemm thread scaling: 512 x 512 multiply_into ===\n");
  const std::size_t before = global_thread_count();
  const std::size_t counts[] = {1, 2, 4, 8};
  double results[4] = {};
  for (std::size_t i = 0; i < 4; ++i) {
    results[i] = gemm_ops_per_sec(counts[i]);
    std::printf("  threads=%zu  %8.2f ops/s  (%.2fx vs 1 thread)\n", counts[i], results[i],
                results[i] / results[0]);
  }
  set_global_threads(before);

  std::ofstream json("BENCH_linalg.json");
  json << "{\n  \"benchmark\": \"multiply_into_512x512\",\n  \"unit\": \"ops_per_sec\",\n"
       << "  \"results\": [\n";
  for (std::size_t i = 0; i < 4; ++i) {
    json << "    {\"threads\": " << counts[i] << ", \"ops_per_sec\": " << results[i]
         << ", \"speedup\": " << results[i] / results[0] << "}" << (i + 1 < 4 ? "," : "")
         << "\n";
  }
  json << "  ]\n}\n";
  std::printf("wrote BENCH_linalg.json\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  run_thread_scaling_experiment();
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}
