#include "bench_util.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "tafloc/telemetry/metrics.h"
#include "tafloc/util/stats.h"
#include "tafloc/util/table.h"

namespace tafloc::bench {

CalibratedRoom::CalibratedRoom(std::uint64_t seed, const TafLocConfig& config)
    : scenario(Scenario::paper_room(seed)),
      x0(),
      ambient0(),
      system(scenario.deployment(), config),
      rng(seed * 7919 + 13) {
  x0 = scenario.collector().survey_all(0.0, rng);
  ambient0 = scenario.collector().ambient_scan(0.0, rng);
  system.calibrate(x0, ambient0, 0.0);
}

ReconstructionOutcome reconstruct_at(CalibratedRoom& room, double t_days,
                                     bool validate_measured) {
  ReconstructionOutcome out;
  out.t_days = t_days;
  const auto report = room.system.update_with_collector(room.scenario.collector(), t_days,
                                                        room.rng);
  out.references = report.references_surveyed;

  const Matrix& reconstructed = room.system.database().fingerprints();
  const Matrix truth = room.scenario.collector().ground_truth(t_days);
  out.errors_vs_truth = entrywise_abs_errors(reconstructed, truth);

  if (validate_measured) {
    // The paper's protocol: compare the reconstruction against freshly
    // measured fingerprints (which carry placement repeatability and
    // sampling noise of their own).
    const Matrix validation = room.scenario.collector().survey_all(t_days, room.rng);
    out.errors_vs_measured = entrywise_abs_errors(reconstructed, validation);
  }
  return out;
}

ReconInstance::ReconInstance(std::uint64_t seed, double t, std::size_t n_refs,
                             ReferencePolicy policy)
    : scenario(Scenario::paper_room(seed)), t_days(t) {
  Rng rng(seed * 104729 + 7);
  x0 = scenario.collector().survey_all(0.0, rng);
  ambient0 = scenario.collector().ambient_scan(0.0, rng);
  mask = DistortionDetector().detect_from_data(x0, ambient0);
  Rng policy_rng(seed + 1);
  refs = select_reference_locations(x0, n_refs, policy, &policy_rng);

  const LrrModel lrr(x0, refs);
  const Matrix fresh = scenario.collector().survey_grids(refs, t, rng);
  Vector fresh_ambient = scenario.collector().ambient_scan(t, rng);

  problem.mask_undistorted = mask.undistorted;
  problem.known = known_entry_matrix(mask, fresh_ambient);
  problem.prediction = lrr.predict(fresh);
  problem.reference_columns = fresh;
  problem.reference_indices = refs;
  problem.continuity = continuity_pairs(scenario.deployment(), &mask);
  problem.similarity = similarity_pairs(scenario.deployment(), &mask);

  truth = scenario.collector().ground_truth(t);
}

void print_cdf_summary(const std::string& label, const std::vector<double>& samples,
                       double curve_hi, const std::string& unit) {
  const EmpiricalCdf cdf(samples);
  AsciiTable t;
  t.set_header({"series", "mean", "median", "p80", "p95", "max", "unit"});
  t.add_row({label, AsciiTable::num(cdf.mean()), AsciiTable::num(cdf.median()),
             AsciiTable::num(cdf.quantile(0.8)), AsciiTable::num(cdf.quantile(0.95)),
             AsciiTable::num(cdf.max()), unit});
  std::fputs(t.render().c_str(), stdout);

  std::printf("  CDF(%s): ", label.c_str());
  for (const auto& [x, f] : cdf.curve(0.0, curve_hi, 13)) {
    std::printf("%.1f:%.2f ", x, f);
  }
  std::printf("\n");
}

std::string csv_path(const std::string& stem) { return stem + ".csv"; }

bool smoke_mode() {
  static const bool on = [] {
    const char* v = std::getenv("TAFLOC_BENCH_SMOKE");
    return v != nullptr && std::strcmp(v, "0") != 0;
  }();
  return on;
}

bool telemetry_mode() {
  static const bool on = [] {
    const char* v = std::getenv("TAFLOC_BENCH_TELEMETRY");
    return v != nullptr && std::strcmp(v, "0") != 0;
  }();
  return on;
}

std::string telemetry_json_array(const MetricRegistry& registry, int indent) {
  // snapshot_json() is JSONL -- every line a standalone object -- so the
  // array is just the lines joined with commas.
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  const std::string snapshot = registry.snapshot_json();
  std::string out = "[";
  bool first = true;
  std::size_t begin = 0;
  while (begin < snapshot.size()) {
    std::size_t end = snapshot.find('\n', begin);
    if (end == std::string::npos) end = snapshot.size();
    if (end > begin) {
      out += first ? "\n" : ",\n";
      out += pad;
      out += "  ";
      out.append(snapshot, begin, end - begin);
      first = false;
    }
    begin = end + 1;
  }
  out += first ? "]" : "\n" + pad + "]";
  return out;
}

int finish_benchmarks(int argc, char** argv) {
  if (smoke_mode()) {
    std::printf("[smoke] TAFLOC_BENCH_SMOKE set: tables ran at tiny sizes, "
                "micro timings skipped\n");
    return 0;
  }
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  return 0;
}

}  // namespace tafloc::bench
